#include "core/cloud.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {
namespace {

models::GeneralModelConfig tiny_general_config() {
  models::GeneralModelConfig config;
  config.hidden_dim = 8;
  config.train.epochs = 2;
  config.train.batch_size = 64;
  config.train.lr = 3e-3;
  return config;
}

models::WindowDataset contributor_data(const pelican::testing::World& w) {
  std::vector<mobility::Window> pooled;
  for (const auto& trajectory : w.contributor_trajectories) {
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }
  return {std::move(pooled), w.spec};
}

class CloudTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = pelican::testing::make_untrained_world(2, 2, 1);
  }
  pelican::testing::World world_;
};

TEST_F(CloudTest, TrainsAndVersionsGeneralModels) {
  CloudServer cloud;
  EXPECT_THROW((void)cloud.latest_version(), std::logic_error);

  const auto data = contributor_data(world_);
  const auto v1 = cloud.train_general(data, tiny_general_config());
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(cloud.latest_version(), 1u);
  EXPECT_TRUE(cloud.has_version(1));
  EXPECT_FALSE(cloud.has_version(2));

  const auto v2 = cloud.train_general(data, tiny_general_config());
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(cloud.latest_version(), 2u);
  EXPECT_TRUE(cloud.has_version(1)) << "old versions stay downloadable";
}

TEST_F(CloudTest, DownloadIsADeepCopy) {
  CloudServer cloud;
  const auto data = contributor_data(world_);
  const auto version = cloud.train_general(data, tiny_general_config());

  auto downloaded = cloud.download_general(version);
  // Mutating the downloaded copy must not affect later downloads.
  downloaded.head().weight()(0, 0) += 10.0f;
  auto fresh = cloud.download_general(version);
  EXPECT_NE(downloaded.head().weight()(0, 0), fresh.head().weight()(0, 0));

  EXPECT_THROW((void)cloud.download_general(99), std::out_of_range);
}

TEST_F(CloudTest, RecordsTrainingCostAndReport) {
  CloudServer cloud;
  const auto data = contributor_data(world_);
  const auto version = cloud.train_general(data, tiny_general_config());

  const PhaseCost& cost = cloud.training_cost(version);
  EXPECT_GT(cost.wall_seconds, 0.0);
  EXPECT_GE(cost.cpu_seconds, 0.0);
  // Cycles must be consistent with the measured CPU time (a tiny training
  // under scheduler contention can legitimately round to ~0 cycles).
  EXPECT_EQ(cost.est_cycles,
            static_cast<std::uint64_t>(cost.cpu_seconds * 2.2e9));

  const nn::TrainReport& report = cloud.training_report(version);
  EXPECT_EQ(report.epochs_run, 2u);

  EXPECT_THROW((void)cloud.training_cost(42), std::out_of_range);
  EXPECT_THROW((void)cloud.training_report(42), std::out_of_range);
}

TEST_F(CloudTest, UnknownVersionErrorsNameTheVersion) {
  // The error contract: every unknown-version path throws std::out_of_range
  // whose message carries the requested version id, so a failed model
  // download in a multi-version deployment is diagnosable from the message
  // alone (the old map::at "invalid map<K, T> key" said nothing).
  CloudServer cloud;
  const auto data = contributor_data(world_);
  (void)cloud.train_general(data, tiny_general_config());

  const auto expect_names_version = [](auto&& call, const char* version_id) {
    try {
      call();
      FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range& e) {
      EXPECT_NE(std::string(e.what()).find(version_id), std::string::npos)
          << "message must name version " << version_id
          << ", got: " << e.what();
    }
  };
  expect_names_version([&] { (void)cloud.download_general(99); }, "99");
  expect_names_version([&] { (void)cloud.training_cost(42); }, "42");
  expect_names_version([&] { (void)cloud.training_report(7); }, "7");
}

TEST_F(CloudTest, GeneralVersionsLiveInTheModelStore) {
  // The cloud's version map IS the shared model store: artifacts trained
  // here are readable by anything holding the store (serving publish,
  // benches), under the documented scope/user/version convention.
  auto shared = std::make_shared<store::ModelStore>();
  CloudServer cloud(shared);
  const auto data = contributor_data(world_);
  const auto v1 = cloud.train_general(data, tiny_general_config());

  EXPECT_TRUE(shared->contains({CloudServer::kGeneralScope, 0, v1}));
  EXPECT_EQ(shared->latest(CloudServer::kGeneralScope, 0), v1);
  EXPECT_EQ(cloud.shared_model_store().get(), shared.get());

  // A version put into the store out-of-band is downloadable (the store is
  // authoritative), though it has no training metadata.
  shared->put({CloudServer::kGeneralScope, 0, 50},
              cloud.download_general(v1));
  EXPECT_TRUE(cloud.has_version(50));
  EXPECT_NO_THROW((void)cloud.download_general(50));
  EXPECT_THROW((void)cloud.training_cost(50), std::out_of_range);

  EXPECT_THROW(CloudServer(nullptr), std::invalid_argument);
}

TEST_F(CloudTest, HostsPersonalizedModelsBehindPrivacyLayer) {
  CloudServer cloud;
  const auto data = contributor_data(world_);
  const auto version = cloud.train_general(data, tiny_general_config());

  DeployedModel deployment(cloud.download_general(version), world_.spec,
                           PrivacyLayer(1e-3), DeploymentSite::kInCloud);
  EXPECT_FALSE(cloud.hosts_user(7));
  cloud.host_personalized(7, std::move(deployment));
  EXPECT_TRUE(cloud.hosts_user(7));

  DeployedModel& hosted = cloud.hosted_model(7);
  EXPECT_EQ(hosted.site(), DeploymentSite::kInCloud);
  EXPECT_DOUBLE_EQ(hosted.temperature(), 1e-3);
  EXPECT_THROW((void)cloud.hosted_model(8), std::out_of_range);
}

TEST_F(CloudTest, FindHostedIsTheNonThrowingLookup) {
  CloudServer cloud;
  const auto data = contributor_data(world_);
  const auto version = cloud.train_general(data, tiny_general_config());

  EXPECT_EQ(cloud.find_hosted(7), nullptr)
      << "unknown user resolves to nullptr, not a throw";

  cloud.host_personalized(7,
                          DeployedModel(cloud.download_general(version),
                                        world_.spec, PrivacyLayer(1.0),
                                        DeploymentSite::kInCloud));
  DeployedModel* hosted = cloud.find_hosted(7);
  ASSERT_NE(hosted, nullptr);
  EXPECT_EQ(hosted, &cloud.hosted_model(7))
      << "both lookups resolve to the same deployment";
}

TEST_F(CloudTest, TakeHostedHandsOwnershipToTheCaller) {
  CloudServer cloud;
  const auto data = contributor_data(world_);
  const auto version = cloud.train_general(data, tiny_general_config());

  cloud.host_personalized(1,
                          DeployedModel(cloud.download_general(version),
                                        world_.spec, PrivacyLayer(1e-3),
                                        DeploymentSite::kInCloud));
  cloud.host_personalized(2,
                          DeployedModel(cloud.download_general(version),
                                        world_.spec, PrivacyLayer(1.0),
                                        DeploymentSite::kInCloud));

  auto hosted = cloud.take_hosted();
  EXPECT_EQ(hosted.size(), 2u);
  EXPECT_DOUBLE_EQ(hosted.at(1).temperature(), 1e-3);
  EXPECT_FALSE(cloud.hosts_user(1));
  EXPECT_FALSE(cloud.hosts_user(2));
  EXPECT_TRUE(cloud.take_hosted().empty()) << "second take finds nothing";
}

}  // namespace
}  // namespace pelican::core
