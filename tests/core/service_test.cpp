#include "core/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "nn/metrics.hpp"
#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {
namespace {

using pelican::testing::trained_world;

DeployedModel make_deployment(double temperature) {
  const auto& world = trained_world();
  return DeployedModel(world.personal_model.clone(), world.spec,
                       PrivacyLayer(temperature), DeploymentSite::kOnDevice);
}

TEST(DeployedModel, QueryReturnsDistributionsAndCounts) {
  DeployedModel deployment = make_deployment(1.0);
  const auto& world = trained_world();

  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(2, world.spec.input_dim(), 0.0f));
  models::encode_window(world.user0_test[0], world.spec, x, 0);
  models::encode_window(world.user0_test[1], world.spec, x, 1);

  EXPECT_EQ(deployment.query_count(), 0u);
  const nn::Matrix probs = deployment.query(x);
  EXPECT_EQ(deployment.query_count(), 2u)
      << "a 2-row query spends 2 units of the query budget";
  ASSERT_EQ(probs.rows(), 2u);
  ASSERT_EQ(probs.cols(), world.spec.num_locations);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (const float p : probs.row(r)) total += p;
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(DeployedModel, PredictTopKMatchesQueryRanking) {
  DeployedModel deployment = make_deployment(1.0);
  const auto& world = trained_world();
  const auto& window = world.user0_test[0];

  const auto top3 = deployment.predict_top_k(window, 3);
  ASSERT_EQ(top3.size(), 3u);

  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(1, world.spec.input_dim(), 0.0f));
  models::encode_window(window, world.spec, x, 0);
  const nn::Matrix probs = deployment.query(x);
  const auto expected = nn::topk_indices(probs.row(0), 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top3[i], static_cast<std::uint16_t>(expected[i]));
  }
}

TEST(DeployedModel, PrivacyLayerPreservesTopPredictionAndOrdering) {
  // Section V-B's accuracy argument, stated at finite precision: the top
  // prediction is always identical, and among confidences that remain
  // resolvable (> 0) the ordering never inverts relative to the undefended
  // deployment. Entries below the precision floor collapse to exact-zero
  // ties — which is where the defense's privacy comes from.
  DeployedModel plain = make_deployment(1.0);
  DeployedModel cold = make_deployment(1e-4);
  const auto& world = trained_world();
  for (const auto& window : world.user0_test) {
    EXPECT_EQ(plain.predict_top_k(window, 1), cold.predict_top_k(window, 1));

    nn::Sequence x(mobility::kWindowSteps,
                   nn::Matrix(1, world.spec.input_dim(), 0.0f));
    models::encode_window(window, world.spec, x, 0);
    const nn::Matrix warm = plain.query(x);
    const nn::Matrix frozen = cold.query(x);
    for (std::size_t a = 0; a < warm.cols(); ++a) {
      for (std::size_t b = 0; b < warm.cols(); ++b) {
        if (frozen(0, a) > 0.0f && frozen(0, b) > 0.0f &&
            warm(0, a) > warm(0, b)) {
          EXPECT_GE(frozen(0, a), frozen(0, b))
              << "resolvable confidences reordered";
        }
      }
    }
  }
}

TEST(DeployedModel, PredictTopKInvariantUnderStrongTemperature) {
  // The service's rank query is computed in the log domain, so the full
  // top-k list — not just the top prediction — is bit-identical no matter
  // how strong the privacy temperature is. (The magnitude path saturates
  // ranks 2..k into exact-zero ties; ranking there would degrade deeper
  // prefetch slots, see examples/location_prefetch.cpp.)
  DeployedModel plain = make_deployment(1.0);
  DeployedModel cold = make_deployment(PrivacyLayer::kStrongTemperature);
  const auto& world = trained_world();
  for (const auto& window : world.user0_test) {
    EXPECT_EQ(plain.predict_top_k(window, 5), cold.predict_top_k(window, 5));
  }
}

TEST(DeployedModel, ColdConfidencesSaturate) {
  DeployedModel cold = make_deployment(1e-5);
  const auto& world = trained_world();
  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(1, world.spec.input_dim(), 0.0f));
  models::encode_window(world.user0_test[0], world.spec, x, 0);
  const nn::Matrix probs = cold.query(x);
  const float top = *std::max_element(probs.row(0).begin(),
                                      probs.row(0).end());
  EXPECT_GT(top, 0.999f);
}

TEST(DeployedModel, QueryAccountingIsBatchSizeIndependent) {
  // Privacy audits budget ATTACK QUERIES; an adversary must not be able to
  // shrink its measured footprint by batching candidates into fewer
  // forwards. Serving B windows — as one batched call, as B singles, or as
  // one B-row black-box query — must always cost B budget units.
  const auto& world = trained_world();
  ASSERT_GE(world.user0_test.size(), 3u);
  const std::span<const mobility::Window> windows(world.user0_test.data(), 3);

  DeployedModel batched = make_deployment(1.0);
  (void)batched.predict_top_k_batch(windows, 3);
  EXPECT_EQ(batched.query_count(), windows.size());

  DeployedModel singles = make_deployment(1.0);
  for (const auto& window : windows) (void)singles.predict_top_k(window, 3);
  EXPECT_EQ(singles.query_count(), batched.query_count());

  DeployedModel black_box = make_deployment(1.0);
  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(windows.size(), world.spec.input_dim(), 0.0f));
  for (std::size_t r = 0; r < windows.size(); ++r) {
    models::encode_window(windows[r], world.spec, x, r);
  }
  (void)black_box.query(x);
  EXPECT_EQ(black_box.query_count(), windows.size())
      << "query() must count rows, not forward calls";

  // The count is settable for model-update bookkeeping (a published
  // replacement inherits its predecessor's cumulative count).
  black_box.set_query_count(100);
  EXPECT_EQ(black_box.query_count(), 100u);
}

TEST(DeployedModel, SwapModelReplacesInPlace) {
  DeployedModel deployment = make_deployment(1.0);
  const auto& world = trained_world();
  const auto before = deployment.predict_top_k(world.user0_test[0], 1);

  deployment.swap_model(world.general_model.clone());
  // After swapping in the general model, predictions may differ, and the
  // deployment still works.
  const auto after = deployment.predict_top_k(world.user0_test[0], 1);
  EXPECT_EQ(after.size(), 1u);
  (void)before;
}

TEST(DeployedModel, SiteNamesStable) {
  EXPECT_STREQ(to_string(DeploymentSite::kOnDevice), "device");
  EXPECT_STREQ(to_string(DeploymentSite::kInCloud), "cloud");
}

}  // namespace
}  // namespace pelican::core
