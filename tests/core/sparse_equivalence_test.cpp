// ISSUE 4 acceptance: the sparse (one-hot) and dense forward paths of a
// deployment are interchangeable — bit-identical confidences and therefore
// bit-identical top-k predictions, across batch sizes and privacy
// temperatures. Untrained deterministic weights (serving equivalence does
// not need a trained model), so this stays in the smoke tier.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "models/window_dataset.hpp"
#include "serve/serve_support.hpp"

namespace pelican::core {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;
using pelican::serve_testing::tiny_spec;

struct Case {
  std::size_t batch;
  double temperature;
};

class SparseEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(SparseEquivalenceTest, SparseQueryBitIdenticalToDense) {
  const auto [batch, temperature] = GetParam();
  Rng rng(321);
  std::vector<mobility::Window> windows;
  windows.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) windows.push_back(random_window(rng));

  // Separate deployments with identical weights so the two paths cannot
  // share forward caches by accident.
  auto dense_side = tiny_deployment(99, temperature);
  auto sparse_side = tiny_deployment(99, temperature);

  nn::Sequence x_dense(mobility::kWindowSteps,
                       nn::Matrix(batch, tiny_spec().input_dim(), 0.0f));
  for (std::size_t r = 0; r < batch; ++r) {
    models::encode_window(windows[r], tiny_spec(), x_dense, r);
  }
  const nn::SparseSequence x_sparse =
      models::encode_windows_sparse(windows, tiny_spec());
  for (std::size_t t = 0; t < x_sparse.size(); ++t) {
    ASSERT_EQ(x_sparse[t].to_dense(), x_dense[t]) << "encoders disagree";
  }

  const nn::Matrix dense_conf = dense_side.query(x_dense);
  const nn::Matrix sparse_conf = sparse_side.query(x_sparse);
  ASSERT_EQ(dense_conf.rows(), sparse_conf.rows());
  ASSERT_EQ(dense_conf.cols(), sparse_conf.cols());
  EXPECT_EQ(std::memcmp(dense_conf.data(), sparse_conf.data(),
                        dense_conf.size() * sizeof(float)),
            0)
      << "sparse and dense confidences diverged at temperature "
      << temperature;
  EXPECT_EQ(dense_side.query_count(), batch);
  EXPECT_EQ(sparse_side.query_count(), batch);

  // Top-k flows through the same forward, so it is covered by the bitwise
  // check above; assert the public API end to end anyway.
  const auto batched = sparse_side.predict_top_k_batch(windows, 5);
  for (std::size_t r = 0; r < batch; ++r) {
    EXPECT_EQ(batched[r], dense_side.predict_top_k(windows[r], 5))
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BatchesAndTemperatures, SparseEquivalenceTest,
    ::testing::Values(Case{1, 1e-3}, Case{1, 1.0}, Case{1, 10.0},
                      Case{32, 1e-3}, Case{32, 1.0}, Case{32, 10.0},
                      Case{256, 1e-3}, Case{256, 1.0}, Case{256, 10.0}));

TEST(DeployedModelClone, IndependentCopyWithSnapshotCount) {
  auto original = tiny_deployment(5, 1.0);
  Rng rng(6);
  const auto window = random_window(rng);
  (void)original.predict_top_k(window, 3);
  ASSERT_EQ(original.query_count(), 1u);

  auto copy = original.clone();
  EXPECT_EQ(copy.query_count(), 1u) << "clone snapshots the budget";
  EXPECT_EQ(copy.predict_top_k(window, 3), original.predict_top_k(window, 3));
  // Counters advanced independently after the clone.
  EXPECT_EQ(original.query_count(), 2u);
  EXPECT_EQ(copy.query_count(), 2u);
  (void)copy.predict_top_k(window, 3);
  EXPECT_EQ(copy.query_count(), 3u);
  EXPECT_EQ(original.query_count(), 2u);
}

}  // namespace
}  // namespace pelican::core
