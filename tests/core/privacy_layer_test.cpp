#include "core/privacy_layer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace pelican::core {
namespace {

TEST(PrivacyLayer, RejectsNonPositiveTemperature) {
  EXPECT_THROW(PrivacyLayer(0.0), std::invalid_argument);
  EXPECT_THROW(PrivacyLayer(-0.5), std::invalid_argument);
}

TEST(PrivacyLayer, TransparentAtTemperatureOne) {
  const PrivacyLayer layer(1.0);
  EXPECT_TRUE(layer.is_transparent());
  Rng rng(1);
  const nn::Matrix logits = nn::Matrix::randn(3, 6, 2.0f, rng);
  const nn::Matrix expected = nn::softmax(logits, 1.0);
  EXPECT_EQ(layer.apply(logits), expected);
}

/// Property sweep over the paper's Fig. 5b temperature grid.
class PrivacyLayerSweep : public ::testing::TestWithParam<double> {};

TEST_P(PrivacyLayerSweep, RowsRemainDistributions) {
  const PrivacyLayer layer(GetParam());
  Rng rng(2);
  const nn::Matrix logits = nn::Matrix::randn(5, 9, 3.0f, rng);
  const nn::Matrix probs = layer.apply(logits);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (const float p : probs.row(r)) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST_P(PrivacyLayerSweep, PreservesConfidenceOrdering) {
  // The accuracy-preservation invariant (Section V-B): scaling never
  // reorders classes, so the service's top-k is untouched.
  const PrivacyLayer layer(GetParam());
  Rng rng(3);
  const nn::Matrix logits = nn::Matrix::randn(4, 12, 2.0f, rng);
  const nn::Matrix probs = layer.apply(logits);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    for (std::size_t a = 0; a < logits.cols(); ++a) {
      for (std::size_t b = 0; b < logits.cols(); ++b) {
        if (logits(r, a) > logits(r, b)) {
          EXPECT_GE(probs(r, a), probs(r, b))
              << "T=" << GetParam() << " reordered classes";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TemperatureGrid, PrivacyLayerSweep,
                         ::testing::Values(1.0, 1e-1, 1e-2, 1e-3, 1e-4,
                                           1e-5));

TEST(PrivacyLayer, LowTemperatureSaturatesConfidences) {
  const PrivacyLayer layer(1e-5);
  nn::Matrix logits(1, 4);
  logits(0, 0) = 1.0f;
  logits(0, 1) = 0.9f;
  logits(0, 2) = 0.5f;
  logits(0, 3) = 0.0f;
  const nn::Matrix probs = layer.apply(logits);
  EXPECT_NEAR(probs(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(probs(0, 1), 0.0f, 1e-6);
  EXPECT_NEAR(probs(0, 2), 0.0f, 1e-6);
}

TEST(PrivacyLayer, SmallerTemperatureSharpensMonotonically) {
  nn::Matrix logits(1, 3);
  logits(0, 0) = 0.7f;
  logits(0, 1) = 0.4f;
  logits(0, 2) = 0.1f;
  double previous_top = 0.0;
  for (const double t : {1.0, 0.5, 0.1, 0.01, 0.001}) {
    const nn::Matrix probs = PrivacyLayer(t).apply(logits);
    EXPECT_GE(probs(0, 0) + 1e-7, previous_top)
        << "top confidence must not decrease as T shrinks";
    previous_top = probs(0, 0);
  }
  EXPECT_GT(previous_top, 0.999);
}

TEST(PrivacyLayer, ConfidenceGapsShrinkInformationContent) {
  // The defense's mechanism: with small T the gap between confidences for
  // different *inputs* (not classes) collapses, starving the attack of
  // signal. Model two inputs by two logit rows differing in the observed
  // class score.
  nn::Matrix logits(2, 3);
  logits(0, 0) = 2.0f;  // input A: output class 0 strongly supported
  logits(0, 1) = 1.0f;
  logits(0, 2) = 0.0f;
  logits(1, 0) = 1.2f;  // input B: class 0 weakly preferred
  logits(1, 1) = 1.0f;
  logits(1, 2) = 0.8f;

  const nn::Matrix warm = PrivacyLayer(1.0).apply(logits);
  const nn::Matrix cold = PrivacyLayer(1e-4).apply(logits);
  const double warm_gap = std::abs(warm(0, 0) - warm(1, 0));
  const double cold_gap = std::abs(cold(0, 0) - cold(1, 0));
  EXPECT_GT(warm_gap, 0.2);
  EXPECT_LT(cold_gap, 1e-3)
      << "cold confidences must be indistinguishable across inputs";
}

TEST(PrivacyLayer, StrongTemperatureConstantIsUsable) {
  const PrivacyLayer layer(PrivacyLayer::kStrongTemperature);
  EXPECT_DOUBLE_EQ(layer.temperature(), 1e-3);
}

}  // namespace
}  // namespace pelican::core
