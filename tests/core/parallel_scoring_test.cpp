// Parallel candidate scoring (ISSUE 4 tentpole, ROADMAP "Attack
// parallelism, phase 2"): scoring across per-worker replicas must equal the
// serial reference exactly — same per-location scores for every worker
// count, same inversion accuracy, and the replicas' queries must charge the
// original deployment's budget. Untrained weights (equivalence, not attack
// quality), so smoke tier.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/inversion.hpp"
#include "serve/serve_support.hpp"

namespace pelican::core {
namespace {

using pelican::serve_testing::kLocations;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;

std::vector<attack::Candidate> brute_force_candidates(
    const mobility::Window& window) {
  std::vector<std::uint16_t> guesses(kLocations);
  for (std::size_t i = 0; i < guesses.size(); ++i) {
    guesses[i] = static_cast<std::uint16_t>(i);
  }
  return attack::enumerate_candidates(attack::AttackMethod::kBruteForce,
                                      attack::Adversary::kA1, window, guesses,
                                      {});
}

TEST(ParallelScoring, BitIdenticalAcrossReplicaCounts) {
  auto deployment = tiny_deployment(17, 1.0);
  Rng rng(18);
  const auto window = random_window(rng);
  const auto candidates = brute_force_candidates(window);
  const std::vector<double> prior(kLocations, 1.0 / kLocations);
  constexpr std::size_t kQueryBatch = 256;

  const auto serial =
      attack::score_candidates(deployment, candidates, window.next_location,
                               prior, kQueryBatch);

  for (const std::size_t replica_count : {std::size_t{1}, std::size_t{2},
                                          std::size_t{5}}) {
    auto replicas = attack::make_scoring_replicas(deployment, replica_count);
    ASSERT_EQ(replicas.size(), replica_count)
        << "DeployedModel must support replication";
    const auto parallel = attack::score_candidates_parallel(
        deployment, candidates, window.next_location, prior, kQueryBatch,
        replicas);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t l = 0; l < serial.size(); ++l) {
      EXPECT_EQ(parallel[l], serial[l])
          << "location " << l << " diverged with " << replica_count
          << " replicas";
    }
  }
}

TEST(ParallelScoring, ReplicasChargeTheOriginalBudget) {
  auto deployment = tiny_deployment(19, 1.0);
  Rng rng(20);
  const auto window = random_window(rng);
  const auto candidates = brute_force_candidates(window);
  const std::vector<double> prior(kLocations, 1.0 / kLocations);

  auto replicas = attack::make_scoring_replicas(deployment, 3);
  (void)attack::score_candidates_parallel(deployment, candidates,
                                          window.next_location, prior, 256,
                                          replicas);
  EXPECT_EQ(deployment.query_count(), candidates.size())
      << "every scored candidate must spend the original's budget, "
         "regardless of which replica served it";
}

TEST(ParallelScoring, RunInversionMatchesSerialReference) {
  Rng rng(21);
  std::vector<mobility::Window> targets;
  for (int i = 0; i < 3; ++i) targets.push_back(random_window(rng));
  const std::vector<double> prior(kLocations, 1.0 / kLocations);

  attack::InversionConfig config;
  config.method = attack::AttackMethod::kBruteForce;
  config.adversary = attack::Adversary::kA1;
  config.ks = {1, 3};

  auto serial_model = tiny_deployment(22, 1.0);
  config.parallel_scoring = false;
  const auto serial =
      attack::run_inversion(serial_model, targets, targets, prior, config);

  auto parallel_model = tiny_deployment(22, 1.0);
  config.parallel_scoring = true;
  const auto parallel =
      attack::run_inversion(parallel_model, targets, targets, prior, config);

  EXPECT_EQ(serial.topk_accuracy, parallel.topk_accuracy);
  EXPECT_EQ(serial.model_queries, parallel.model_queries);
  EXPECT_EQ(serial.windows_attacked, parallel.windows_attacked);
  EXPECT_EQ(serial_model.query_count(), parallel_model.query_count());
}

}  // namespace
}  // namespace pelican::core
