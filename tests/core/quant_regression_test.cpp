// ISSUE 6 acceptance: the accuracy/privacy regression harness for the int8
// serving path. A quantized deployment is a documented approximation of its
// fp32 original (nn/quant.hpp), so the contract here is tolerance, not
// bit-identity:
//
//   1. service quality — top-k answers agree with the fp32 deployment on
//      (nearly) every query; disagreements only happen where two logits sit
//      within the quantization error of each other;
//   2. privacy — the model-inversion attack does no better against the
//      quantized artifact than against the fp32 one (within tolerance), so
//      publishing int8 never weakens the paper's attack-resistance story.
//
// Untrained deterministic weights (the fp32-vs-int8 delta does not need a
// trained model) and a handful of attacked windows keep this in the smoke
// tier; the thresholds are far looser than the deterministic measured
// values, so the test fails only on real regressions.
#include <gtest/gtest.h>

#include <vector>

#include "attack/inversion.hpp"
#include "serve/serve_support.hpp"
#include "store/model_store.hpp"

namespace pelican::core {
namespace {

using pelican::serve_testing::kLocations;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_model;
using pelican::serve_testing::tiny_spec;

constexpr std::uint64_t kSeed = 77;

/// fp32 and int8 deployments of the SAME weights, the int8 side produced by
/// the store's quantize-on-publish (the exact artifact path serving uses).
struct Pair {
  DeployedModel fp32;
  DeployedModel int8;
};

Pair deployment_pair(double temperature = 1.0) {
  store::ModelStore store;
  store.put({"quant", 1, 1}, tiny_model(kSeed), store::PublishFormat::kFp32);
  store.put({"quant", 1, 2}, tiny_model(kSeed), store::PublishFormat::kInt8);
  auto fp32_model = store.get({"quant", 1, 1});
  auto int8_model = store.get({"quant", 1, 2});
  EXPECT_FALSE(nn::is_quantized(fp32_model));
  EXPECT_TRUE(nn::is_quantized(int8_model));
  return {DeployedModel(std::move(fp32_model), tiny_spec(),
                        PrivacyLayer(temperature), DeploymentSite::kInCloud),
          DeployedModel(std::move(int8_model), tiny_spec(),
                        PrivacyLayer(temperature), DeploymentSite::kInCloud)};
}

TEST(QuantRegression, StorePublishesQuantizedArtifact) {
  auto pair = deployment_pair();
  EXPECT_FALSE(pair.fp32.quantized());
  EXPECT_TRUE(pair.int8.quantized());
}

TEST(QuantRegression, TopKAgreementWithinTolerance) {
  auto pair = deployment_pair();
  Rng rng(404);
  const std::size_t windows = 300;
  const std::size_t k = 3;
  std::size_t top1_agree = 0;
  std::size_t topk_overlap = 0;  // shared entries across all top-3 sets
  for (std::size_t i = 0; i < windows; ++i) {
    const auto window = random_window(rng);
    const auto a = pair.fp32.predict_top_k(window, k);
    const auto b = pair.int8.predict_top_k(window, k);
    ASSERT_EQ(a.size(), k);
    ASSERT_EQ(b.size(), k);
    top1_agree += a[0] == b[0] ? 1 : 0;
    for (const auto loc : a) {
      for (const auto other : b) {
        if (loc == other) {
          ++topk_overlap;
          break;
        }
      }
    }
  }
  // Measured (deterministic): 300/300 top-1, 900/900 top-3 at these seeds.
  // Quantization may flip genuine near-ties, so the floor allows a few.
  EXPECT_GE(top1_agree, windows * 95 / 100);
  EXPECT_GE(topk_overlap, windows * k * 95 / 100);
}

TEST(QuantRegression, InversionAttackNoMoreEffectiveAgainstInt8) {
  // The privacy half: quantization must not open a side door. Attack both
  // deployments with the same inversion configuration and require the int8
  // attack accuracy to stay within tolerance of fp32 (in BOTH directions —
  // a big drop would mean the quantized model stopped serving faithfully,
  // a big rise would mean it leaks more).
  auto pair = deployment_pair();
  Rng rng(505);
  std::vector<mobility::Window> targets;
  targets.reserve(16);
  for (std::size_t i = 0; i < 16; ++i) targets.push_back(random_window(rng));
  const std::vector<double> uniform(kLocations, 1.0 / kLocations);

  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kBruteForce;  // full domain, tiny here
  config.ks = {1, 3};

  const auto fp32 =
      attack::run_inversion(pair.fp32, targets, targets, uniform, config);
  const auto int8 =
      attack::run_inversion(pair.int8, targets, targets, uniform, config);
  ASSERT_EQ(fp32.windows_attacked, targets.size());
  ASSERT_EQ(int8.windows_attacked, targets.size());
  for (const std::size_t k : config.ks) {
    // 16 windows -> one flipped window moves accuracy by 0.0625; allow two.
    EXPECT_NEAR(fp32.at_k(k), int8.at_k(k), 0.125 + 1e-9)
        << "inversion accuracy diverged at k=" << k;
  }
}

TEST(QuantRegression, PrivacyLayerComposesWithQuantizedModels) {
  // The paper's defense (low-temperature softmax) must behave the same way
  // on the int8 path: extreme temperature collapses confidences toward a
  // one-hot answer, and the quantized deployment still agrees with fp32 on
  // the surviving argmax.
  auto pair = deployment_pair(/*temperature=*/1e-3);
  Rng rng(606);
  std::size_t agree = 0;
  const std::size_t windows = 100;
  for (std::size_t i = 0; i < windows; ++i) {
    const auto window = random_window(rng);
    const auto a = pair.fp32.predict_top_k(window, 1);
    const auto b = pair.int8.predict_top_k(window, 1);
    agree += a[0] == b[0] ? 1 : 0;
  }
  EXPECT_GE(agree, windows * 95 / 100);
}

}  // namespace
}  // namespace pelican::core
