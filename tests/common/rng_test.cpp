#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace pelican {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, BelowIsBoundedAndCoversAll) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(21);
  Rng a = parent.fork(3);
  Rng b = Rng(21).fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkTagsDecorrelate) {
  Rng parent(22);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng parent(23);
  Rng twin(23);
  (void)parent.fork(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(parent(), twin());
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(24);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalSingleBucket) {
  Rng rng(25);
  const std::vector<double> weights = {2.0};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.categorical(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(26);
  std::vector<int> xs(100);
  for (int i = 0; i < 100; ++i) xs[static_cast<std::size_t>(i)] = i;
  auto shuffled = xs;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(xs.begin(), xs.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(xs, shuffled);
}

TEST(SplitMix64, KnownAvalanche) {
  // Different inputs must map to well-separated outputs.
  EXPECT_NE(split_mix64(0), split_mix64(1));
  EXPECT_NE(split_mix64(1), split_mix64(2));
  const auto x = split_mix64(0x12345678);
  const auto y = split_mix64(0x12345679);
  int differing_bits = 0;
  for (int b = 0; b < 64; ++b) {
    differing_bits += ((x >> b) & 1) != ((y >> b) & 1);
  }
  EXPECT_GT(differing_bits, 16);
}

}  // namespace
}  // namespace pelican
