#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace pelican {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = sw.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(Stopwatch, MillisecondsConsistent) {
  Stopwatch sw;
  const double s = sw.seconds();
  const double ms = sw.milliseconds();
  EXPECT_GE(ms, s * 1e3);
}

TEST(CpuTime, MonotoneNondecreasing) {
  const double a = process_cpu_seconds();
  // Burn a little CPU.
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 0.1;
  const double b = process_cpu_seconds();
  EXPECT_GE(b, a);
}

TEST(CpuTime, EstimatedCyclesScaleWithGhz) {
  const auto low = estimated_cpu_cycles(1.0);
  const auto high = estimated_cpu_cycles(4.0);
  EXPECT_GE(high, low);
}

TEST(PhaseTimer, ReportsCosts) {
  PhaseTimer timer;
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 0.1;
  const PhaseCost cost = timer.stop();
  EXPECT_GT(cost.wall_seconds, 0.0);
  EXPECT_GE(cost.cpu_seconds, 0.0);
  EXPECT_EQ(cost.est_cycles,
            static_cast<std::uint64_t>(cost.cpu_seconds * 2.2e9));
}

}  // namespace
}  // namespace pelican
