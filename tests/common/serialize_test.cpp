#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace pelican {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("pelican_serialize_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(SerializeTest, RoundTripsAllPrimitives) {
  {
    BinaryWriter writer(path_, 3);
    writer.write_u8(0xAB);
    writer.write_u32(0xDEADBEEF);
    writer.write_u64(0x0123456789ABCDEFULL);
    writer.write_i64(-42);
    writer.write_f32(3.25f);
    writer.write_f64(-2.5e-300);
    writer.write_string("pelican");
    writer.finish();
  }
  BinaryReader reader(path_, 3);
  EXPECT_EQ(reader.read_u8(), 0xAB);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -2.5e-300);
  EXPECT_EQ(reader.read_string(), "pelican");
}

TEST_F(SerializeTest, RoundTripsSpans) {
  const std::vector<float> floats = {1.0f, -2.0f, 0.5f};
  const std::vector<std::uint32_t> ints = {7, 8, 9, 10};
  {
    BinaryWriter writer(path_, 1);
    writer.write_f32_span(floats);
    writer.write_u32_span(ints);
    writer.finish();
  }
  BinaryReader reader(path_, 1);
  EXPECT_EQ(reader.read_f32_vector(), floats);
  EXPECT_EQ(reader.read_u32_vector(), ints);
}

TEST_F(SerializeTest, EmptySpansRoundTrip) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_f32_span({});
    writer.write_string("");
    writer.finish();
  }
  BinaryReader reader(path_, 1);
  EXPECT_TRUE(reader.read_f32_vector().empty());
  EXPECT_TRUE(reader.read_string().empty());
}

TEST_F(SerializeTest, RejectsVersionMismatch) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_u32(99);
    writer.finish();
  }
  EXPECT_THROW(BinaryReader(path_, 2), SerializeError);
}

TEST_F(SerializeTest, RejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t garbage[2] = {0x11111111, 1};
    out.write(reinterpret_cast<const char*>(garbage), sizeof garbage);
  }
  EXPECT_THROW(BinaryReader(path_, 1), SerializeError);
}

TEST_F(SerializeTest, ThrowsOnTruncation) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_u32(5);
    writer.finish();
  }
  BinaryReader reader(path_, 1);
  EXPECT_EQ(reader.read_u32(), 5u);
  EXPECT_THROW((void)reader.read_u64(), SerializeError);
}

TEST_F(SerializeTest, ThrowsOnMissingFile) {
  EXPECT_THROW(BinaryReader(path_ / "nope.bin", 1), SerializeError);
}

TEST_F(SerializeTest, WriterFailsOnBadPath) {
  EXPECT_THROW(BinaryWriter("/nonexistent_dir_zz/file.bin", 1),
               SerializeError);
}

}  // namespace
}  // namespace pelican
