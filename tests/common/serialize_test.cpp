#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace pelican {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("pelican_serialize_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(SerializeTest, RoundTripsAllPrimitives) {
  {
    BinaryWriter writer(path_, 3);
    writer.write_u8(0xAB);
    writer.write_u32(0xDEADBEEF);
    writer.write_u64(0x0123456789ABCDEFULL);
    writer.write_i64(-42);
    writer.write_f32(3.25f);
    writer.write_f64(-2.5e-300);
    writer.write_string("pelican");
    writer.finish();
  }
  BinaryReader reader(path_, 3);
  EXPECT_EQ(reader.read_u8(), 0xAB);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -2.5e-300);
  EXPECT_EQ(reader.read_string(), "pelican");
}

TEST_F(SerializeTest, RoundTripsSpans) {
  const std::vector<float> floats = {1.0f, -2.0f, 0.5f};
  const std::vector<std::uint32_t> ints = {7, 8, 9, 10};
  {
    BinaryWriter writer(path_, 1);
    writer.write_f32_span(floats);
    writer.write_u32_span(ints);
    writer.finish();
  }
  BinaryReader reader(path_, 1);
  EXPECT_EQ(reader.read_f32_vector(), floats);
  EXPECT_EQ(reader.read_u32_vector(), ints);
}

TEST_F(SerializeTest, RoundTripsI8Spans) {
  // The int8 weight payload primitive (nn/quant.hpp): full signed range,
  // mixed with neighbors so framing errors cannot cancel out.
  const std::vector<std::int8_t> bytes = {-128, -127, -1, 0, 1, 63, 127};
  {
    BinaryWriter writer(path_, 1);
    writer.write_i8_span(bytes);
    writer.write_u32(0xCAFEF00D);
    writer.write_i8_span({});
    writer.finish();
  }
  BinaryReader reader(path_, 1);
  EXPECT_EQ(reader.read_i8_vector(), bytes);
  EXPECT_EQ(reader.read_u32(), 0xCAFEF00Du);
  EXPECT_TRUE(reader.read_i8_vector().empty());
}

TEST_F(SerializeTest, EmptySpansRoundTrip) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_f32_span({});
    writer.write_string("");
    writer.finish();
  }
  BinaryReader reader(path_, 1);
  EXPECT_TRUE(reader.read_f32_vector().empty());
  EXPECT_TRUE(reader.read_string().empty());
}

TEST_F(SerializeTest, RejectsVersionMismatch) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_u32(99);
    writer.finish();
  }
  EXPECT_THROW(BinaryReader(path_, 2), SerializeError);
}

TEST_F(SerializeTest, RejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t garbage[2] = {0x11111111, 1};
    out.write(reinterpret_cast<const char*>(garbage), sizeof garbage);
  }
  EXPECT_THROW(BinaryReader(path_, 1), SerializeError);
}

TEST_F(SerializeTest, ThrowsOnTruncation) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_u32(5);
    writer.finish();
  }
  BinaryReader reader(path_, 1);
  EXPECT_EQ(reader.read_u32(), 5u);
  EXPECT_THROW((void)reader.read_u64(), SerializeError);
}

TEST_F(SerializeTest, ThrowsOnMissingFile) {
  EXPECT_THROW(BinaryReader(path_ / "nope.bin", 1), SerializeError);
}

TEST_F(SerializeTest, WriterFailsOnBadPath) {
  EXPECT_THROW(BinaryWriter("/nonexistent_dir_zz/file.bin", 1),
               SerializeError);
}

TEST(Crc32Test, MatchesTheIeeeReferenceVector) {
  // The classic check value for CRC-32/IEEE (zlib convention).
  const char* data = "123456789";
  EXPECT_EQ(crc32(0, data, 9), 0xCBF43926u);
  // Incremental chunking must not change the digest.
  std::uint32_t crc = crc32(0, data, 4);
  crc = crc32(crc, data + 4, 5);
  EXPECT_EQ(crc, 0xCBF43926u);
  EXPECT_EQ(crc32(0, data, 0), 0u);
}

TEST_F(SerializeTest, DetectsPayloadCorruptionAtOpen) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_string("integrity matters");
    writer.write_f32_span({{1.0f, 2.0f, 3.0f}});
    writer.finish();
  }
  // Flip one payload bit (past the 12-byte header).
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    ASSERT_GT(size, 16);
    file.seekp(size - 3);
    char byte = 0;
    file.seekg(size - 3);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(size - 3);
    file.write(&byte, 1);
  }
  EXPECT_THROW(BinaryReader(path_, 1), SerializeError)
      << "a bit-flipped checkpoint must be rejected before any typed read";
}

TEST_F(SerializeTest, DetectsTruncatedPayloadAtOpen) {
  {
    BinaryWriter writer(path_, 1);
    writer.write_f32_span({{1.0f, 2.0f, 3.0f, 4.0f}});
    writer.finish();
  }
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 5);
  EXPECT_THROW(BinaryReader(path_, 1), SerializeError)
      << "a torn write (short file) must fail the checksum at open";
}

TEST_F(SerializeTest, EmptyPayloadChecksumRoundTrips) {
  { BinaryWriter(path_, 1).finish(); }
  EXPECT_NO_THROW(BinaryReader(path_, 1));
}

TEST(BufferSerializeTest, RoundTripsAllPrimitives) {
  BufferWriter writer;
  writer.write_u8(7);
  writer.write_u16(0xBEEF);
  writer.write_u32(0xDEADBEEF);
  writer.write_u64(0x0123456789ABCDEFULL);
  writer.write_i64(-1234567890123LL);
  writer.write_f64(-2.5e-300);
  writer.write_string("pelican/router");
  writer.write_u16_span({{std::uint16_t{1}, std::uint16_t{65535}}});
  writer.write_u64_span({{std::uint64_t{42}}});
  writer.write_f64_span({{0.5, -0.25}});

  BufferReader reader(writer.buffer());
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u16(), 0xBEEF);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.read_i64(), -1234567890123LL);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -2.5e-300);
  EXPECT_EQ(reader.read_string(), "pelican/router");
  EXPECT_EQ(reader.read_u16_vector(),
            (std::vector<std::uint16_t>{1, 65535}));
  EXPECT_EQ(reader.read_u64_vector(), (std::vector<std::uint64_t>{42}));
  EXPECT_EQ(reader.read_f64_vector(), (std::vector<double>{0.5, -0.25}));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BufferSerializeTest, RoundTripsEmptySpansAndStrings) {
  // Empty vectors/strings hand the writer data() == nullptr; the raw
  // helpers must not forward that to memcpy/ostream::write (UBSan flags a
  // null pointer passed to a nonnull parameter even with a zero count).
  // Surfaced by the asan-ubsan lane on empty predict-reply and histogram
  // frames.
  BufferWriter writer;
  writer.write_string("");
  writer.write_u16_span({});
  writer.write_u64_span({});
  writer.write_f64_span({});
  writer.write_u8(0xA5);  // sentinel: offsets stay aligned past the empties

  BufferReader reader(writer.buffer());
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_TRUE(reader.read_u16_vector().empty());
  EXPECT_TRUE(reader.read_u64_vector().empty());
  EXPECT_TRUE(reader.read_f64_vector().empty());
  EXPECT_EQ(reader.read_u8(), 0xA5);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BufferSerializeTest, ThrowsOnOverrun) {
  BufferWriter writer;
  writer.write_u32(1);
  BufferReader reader(writer.buffer());
  EXPECT_EQ(reader.read_u32(), 1u);
  EXPECT_THROW((void)reader.read_u8(), SerializeError);
}

TEST(BufferSerializeTest, RejectsOversizedLengthPrefixWithoutAllocating) {
  // A frame claiming 2^60 elements must throw cleanly, not try to allocate.
  BufferWriter writer;
  writer.write_u64(std::uint64_t{1} << 60);
  BufferReader reader(writer.buffer());
  EXPECT_THROW((void)reader.read_f64_vector(), SerializeError);
}

}  // namespace
}  // namespace pelican
