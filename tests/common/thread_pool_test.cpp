#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pelican {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(3);
  try {
    pool.parallel_for(10, [](std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> total{0};
  pool.parallel_for(50, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, NestedCallsFallBackToSerial) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  // The inner call from a worker must not deadlock.
  pool.parallel_for(8, [&](std::size_t) {
    ThreadPool::global().parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, NestedCallFromSubmittingThreadDoesNotDeadlock) {
  // The submitting thread participates in its own batch; a nested
  // parallel_for from ITS share (e.g. a scoring chunk whose matmul crosses
  // the kernel's parallel threshold) used to re-lock submit_mutex_ — held
  // by this very thread — and hang. It must serialize instead, exactly
  // like nesting from a spawned worker.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);

  // Sequential batches after a nested one still parallelize (the flag is
  // restored); observable only as continued progress, asserted via count.
  std::atomic<int> again{0};
  pool.parallel_for(8, [&](std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 8);
}

TEST(ThreadPool, GlobalPoolIsReused) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, GlobalAliveDuringNormalExecution) {
  // The tombstone only flips inside the global pool's static destructor; at
  // any point during normal execution — including before first use — the
  // free parallel_for must take the pooled path.
  EXPECT_TRUE(ThreadPool::global_alive());
  ThreadPool::global();  // force construction
  EXPECT_TRUE(ThreadPool::global_alive());
}

TEST(ThreadPool, ConcurrentSubmittersSerialize) {
  // parallel_for from many threads at once: submit_mutex_ admits one batch
  // at a time; every batch must still cover all of its indices. This is the
  // contention pattern the TSan lane leans on hardest.
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  std::vector<std::atomic<int>> counts(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counts, s] {
      pool.parallel_for(100, [&counts, s](std::size_t) { ++counts[s]; });
    });
  }
  for (auto& t : submitters) t.join();
  for (const auto& c : counts) EXPECT_EQ(c.load(), 100);
}

TEST(ThreadPool, FreeFunctionCoversAll) {
  std::vector<std::atomic<int>> counts(257);
  parallel_for(257, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ManySequentialBatches) {
  ThreadPool pool(2);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> total{0};
    pool.parallel_for(17, [&](std::size_t) { ++total; });
    ASSERT_EQ(total.load(), 17);
  }
}

}  // namespace
}  // namespace pelican
