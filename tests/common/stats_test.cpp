#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace pelican::stats {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> xs = {1.0, 3.0, 5.0};
  EXPECT_NEAR(stddev(xs) * stddev(xs), variance(xs), 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, IncompleteBetaEdges) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(Stats, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.4), 0.4 * 0.4 * (3 - 0.8), 1e-10);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(incomplete_beta(2.5, 1.5, 0.7),
              1.0 - incomplete_beta(1.5, 2.5, 0.3), 1e-10);
}

TEST(Stats, StudentTKnownValues) {
  // Two-sided p for t = 2.228, dof = 10 is ~0.05 (classic t-table value).
  EXPECT_NEAR(student_t_two_sided_p(2.228, 10.0), 0.05, 2e-3);
  // t = 0 gives p = 1.
  EXPECT_NEAR(student_t_two_sided_p(0.0, 5.0), 1.0, 1e-12);
  // Large |t| gives tiny p.
  EXPECT_LT(student_t_two_sided_p(50.0, 20.0), 1e-10);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.0 * x + 1.0);
  const auto c = pearson(xs, ys);
  EXPECT_NEAR(c.r, 1.0, 1e-12);
  EXPECT_NEAR(c.slope, 2.0, 1e-12);
  EXPECT_NEAR(c.intercept, 1.0, 1e-12);
  EXPECT_LT(c.p_value, 1e-6);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {8.0, 6.0, 4.0, 2.0};
  const auto c = pearson(xs, ys);
  EXPECT_NEAR(c.r, -1.0, 1e-12);
}

TEST(Stats, PearsonUncorrelatedHasHighP) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  const auto c = pearson(xs, ys);
  EXPECT_LT(std::abs(c.r), 0.2);
  EXPECT_GT(c.p_value, 0.01);
}

TEST(Stats, PearsonKnownModerateCorrelation) {
  // Hand-checked example: r for these pairs is ~0.5298.
  const std::vector<double> xs = {43, 21, 25, 42, 57, 59};
  const std::vector<double> ys = {99, 65, 79, 75, 87, 81};
  const auto c = pearson(xs, ys);
  EXPECT_NEAR(c.r, 0.5298, 5e-3);
}

TEST(Stats, PearsonDegenerateInputs) {
  const std::vector<double> constant = {2.0, 2.0, 2.0, 2.0};
  const std::vector<double> varying = {1.0, 2.0, 3.0, 4.0};
  const auto c = pearson(constant, varying);
  EXPECT_DOUBLE_EQ(c.r, 0.0);
  EXPECT_DOUBLE_EQ(c.p_value, 1.0);

  const std::vector<double> two = {1.0, 2.0};
  const auto c2 = pearson(two, two);
  EXPECT_DOUBLE_EQ(c2.r, 0.0);
}

TEST(Stats, PearsonThrowsOnSizeMismatch) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)pearson(a, b), std::invalid_argument);
}

TEST(Stats, HistogramCountsAndClamping) {
  const std::vector<double> xs = {-10.0, 0.1, 0.2, 0.55, 0.9, 42.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -10 clamps into bin 0
  EXPECT_EQ(h[1], 3u);  // 42 clamps into bin 1
}

TEST(Stats, HistogramThrowsOnBadArgs) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)histogram(xs, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW((void)histogram(xs, 1.0, 0.0, 4), std::invalid_argument);
}

TEST(Stats, PercentileInterpolatesBetweenRanks) {
  // Unsorted on purpose: percentile sorts a copy.
  const std::vector<double> xs = {30.0, 10.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);   // between 20 and 30
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);   // 10 + 0.75 * (20 - 10)
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), median(xs));
}

TEST(Stats, PercentileEdgeCases) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(percentile(empty, 50.0), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.0);
  // Out-of-range q clamps instead of reading out of bounds.
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200.0), 2.0);
}

}  // namespace
}  // namespace pelican::stats
