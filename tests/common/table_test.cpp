#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pelican {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"method", "top-1", "top-3"});
  t.add_row({"TL FE", "61.19", "79.05"});
  t.add_row({"Reuse", "53.02", "63.68"});
  const std::string s = t.str();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("TL FE"), std::string::npos);
  EXPECT_NE(s.find("79.05"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.str().find("only"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "yyyy"});
  t.add_row({"aaaaaa", "b"});
  std::istringstream in(t.str());
  std::string header, rule, row;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(header.size(), rule.size());
}

TEST(Table, NumFormatsFixed) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, StreamOperatorMatchesStr) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.str());
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Table II");
  EXPECT_NE(os.str().find("Table II"), std::string::npos);
}

}  // namespace
}  // namespace pelican
