#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pelican {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"method", "top-1", "top-3"});
  t.add_row({"TL FE", "61.19", "79.05"});
  t.add_row({"Reuse", "53.02", "63.68"});
  const std::string s = t.str();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("TL FE"), std::string::npos);
  EXPECT_NE(s.find("79.05"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.str().find("only"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "yyyy"});
  t.add_row({"aaaaaa", "b"});
  std::istringstream in(t.str());
  std::string header, rule, row;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(header.size(), rule.size());
}

TEST(Table, NumFormatsFixed) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, StreamOperatorMatchesStr) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.str());
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Table II");
  EXPECT_NE(os.str().find("Table II"), std::string::npos);
}

TEST(Table, ToJsonEmitsHeadersAndTypedCells) {
  Table t({"method", "sec", "note"});
  t.add_row({"brute force", "82.18", "slow"});
  t.add_row({"time-based", "0.68"});  // short row: missing cell renders ""
  const std::string json = t.to_json();

  EXPECT_NE(json.find("\"headers\": [\"method\", \"sec\", \"note\"]"),
            std::string::npos);
  // Numeric-looking cells become JSON numbers, text stays quoted.
  EXPECT_NE(json.find("[\"brute force\", 82.18, \"slow\"]"),
            std::string::npos);
  EXPECT_NE(json.find("[\"time-based\", 0.68, \"\"]"), std::string::npos);
}

TEST(Table, ToJsonEscapesSpecialCharacters) {
  Table t({"a\"b"});
  t.add_row({"line\nbreak\\and \"quote\""});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\\\and \\\"quote\\\""),
            std::string::npos);
}

TEST(Table, ToJsonOnlyUnquotesStrictJsonNumbers) {
  Table t({"a", "b", "c", "d", "e", "f"});
  // All of these are strtod-parsable but are NOT valid bare JSON tokens:
  // numeric-prefixed text, infinities, hex floats, bare fractions, leading
  // '+', and leading zeros. Every one must stay a quoted string.
  t.add_row({"2.5x", "inf", "0x10", ".5", "+3", "007"});
  const std::string json = t.to_json();
  for (const char* cell : {"2.5x", "inf", "0x10", ".5", "+3", "007"}) {
    EXPECT_NE(json.find('"' + std::string(cell) + '"'), std::string::npos)
        << cell << " must be emitted quoted";
  }
  // While the real number shapes the benches emit stay numbers.
  Table n({"w", "x", "y", "z"});
  n.add_row({"0", "-0.5", "82.18", "1e5"});
  const std::string njson = n.to_json();
  EXPECT_NE(njson.find("[0, -0.5, 82.18, 1e5]"), std::string::npos);
}

TEST(Table, ToJsonEmptyTableIsWellFormed) {
  Table t({"only"});
  EXPECT_EQ(t.to_json(), "{\n  \"headers\": [\"only\"],\n  \"rows\": []\n}\n");
}

}  // namespace
}  // namespace pelican
