// Unit tests of the deterministic fault-injection core: spec parsing,
// site/peer matching, after/count/probability gating, determinism across
// identically-seeded injectors, and interruptible stalls.
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace pelican::fault {
namespace {

TEST(FaultSpec, ParsesSeedAndRules) {
  const ParsedSpec spec = parse_fault_spec(
      "seed=42;rule=site:engine.handle,action:stall,ms:30000;"
      "rule=site:socket.send,peer:e1,action:drop,p:0.25,after:3,count:2");
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.rules.size(), 2u);
  EXPECT_EQ(spec.rules[0].site, "engine.handle");
  EXPECT_EQ(spec.rules[0].action, Action::kStall);
  EXPECT_DOUBLE_EQ(spec.rules[0].delay_ms, 30000.0);
  EXPECT_EQ(spec.rules[1].peer, "e1");
  EXPECT_EQ(spec.rules[1].action, Action::kDrop);
  EXPECT_DOUBLE_EQ(spec.rules[1].probability, 0.25);
  EXPECT_EQ(spec.rules[1].after, 3u);
  EXPECT_EQ(spec.rules[1].max_count, 2u);
}

TEST(FaultSpec, PipeSeparatorEqualsSemicolon) {
  // '|' exists because ctest ENVIRONMENT properties eat ';' — both spellings
  // must parse to the same rules.
  const ParsedSpec semi =
      parse_fault_spec("seed=7;rule=site:a,action:delay,ms:5");
  const ParsedSpec pipe =
      parse_fault_spec("seed=7|rule=site:a,action:delay,ms:5");
  ASSERT_EQ(semi.rules.size(), 1u);
  ASSERT_EQ(pipe.rules.size(), 1u);
  EXPECT_EQ(pipe.rules[0].site, semi.rules[0].site);
  EXPECT_EQ(pipe.rules[0].action, semi.rules[0].action);
  EXPECT_EQ(pipe.seed, semi.seed);
}

TEST(FaultSpec, StallDefaultsToSixtySeconds) {
  const ParsedSpec spec = parse_fault_spec("rule=site:x,action:stall");
  ASSERT_EQ(spec.rules.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.rules[0].delay_ms, 60000.0);
}

TEST(FaultSpec, MalformedSpecsThrow) {
  EXPECT_THROW((void)parse_fault_spec("rule=site:x,action:explode"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("rule=sight:x,action:drop"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_spec("bogus=1"), std::invalid_argument);
}

TEST(FaultInjector, InactiveByDefaultAndDecidesNone) {
  Injector injector;
  EXPECT_FALSE(injector.active());
  EXPECT_EQ(injector.decide("socket.send", "e0").action, Action::kNone);
}

TEST(FaultInjector, MatchesBySiteAndPeerSubstring) {
  Injector injector;
  Rule rule;
  rule.site = "engine.handle";
  rule.peer = "engine_1";
  rule.action = Action::kDrop;
  injector.configure({rule}, /*seed=*/1);
  EXPECT_TRUE(injector.active());
  EXPECT_EQ(
      injector.decide("engine.handle.predict_batch", "/tmp/x/engine_1.sock")
          .action,
      Action::kDrop);
  EXPECT_EQ(
      injector.decide("engine.handle.predict_batch", "/tmp/x/engine_0.sock")
          .action,
      Action::kNone);
  EXPECT_EQ(injector.decide("socket.send", "/tmp/x/engine_1.sock").action,
            Action::kNone);
}

TEST(FaultInjector, AfterSkipsAndCountCaps) {
  Injector injector;
  Rule rule;
  rule.site = "s";
  rule.action = Action::kDelay;
  rule.delay_ms = 1.0;
  rule.after = 2;
  rule.max_count = 3;
  injector.configure({rule}, /*seed=*/1);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.decide("s", "").action == Action::kDelay) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.fired(0), 3u);
  // The first two matching calls were skipped; firings 3..5 fired.
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Injector injector;
    Rule rule;
    rule.site = "s";
    rule.action = Action::kDrop;
    rule.probability = 0.5;
    injector.configure({rule}, seed);
    std::vector<bool> outcomes;
    outcomes.reserve(64);
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(injector.decide("s", "").action == Action::kDrop);
    }
    return outcomes;
  };
  const auto a = run(123);
  const auto b = run(123);
  const auto c = run(124);
  EXPECT_EQ(a, b);  // same seed, same faults — the reproducibility contract
  EXPECT_NE(a, c);  // different seed, different stream
  // A fair-ish coin: neither all-fire nor never-fire over 64 draws.
  const auto fired = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fired, 8);
  EXPECT_LT(fired, 56);
}

TEST(FaultInjector, FirstMatchingRuleWins) {
  Injector injector;
  Rule stall;
  stall.site = "s";
  stall.action = Action::kStall;
  stall.delay_ms = 1.0;
  Rule drop;
  drop.site = "s";
  drop.action = Action::kDrop;
  injector.configure({stall, drop}, /*seed=*/1);
  EXPECT_EQ(injector.decide("s", "").action, Action::kStall);
  EXPECT_EQ(injector.fired(0), 1u);
  EXPECT_EQ(injector.fired(1), 0u);
}

TEST(FaultInjector, ClearInterruptsInFlightStall) {
  Injector injector;
  Rule rule;
  rule.site = "s";
  rule.action = Action::kStall;
  rule.delay_ms = 60000.0;  // would sleep a minute if uninterruptible
  injector.configure({rule}, /*seed=*/1);
  const Decision decision = injector.decide("s", "");
  ASSERT_EQ(decision.action, Action::kStall);

  const auto start = std::chrono::steady_clock::now();
  std::thread sleeper([&] { injector.sleep_for(decision); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  injector.clear();  // lifts the stall
  sleeper.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_FALSE(injector.active());
}

TEST(FaultInjector, ConfigureFromSpecString) {
  Injector injector;
  injector.configure("seed=9|rule=site:socket.recv,action:delay,ms:2");
  EXPECT_TRUE(injector.active());
  const Decision decision = injector.decide("socket.recv", "anything");
  EXPECT_EQ(decision.action, Action::kDelay);
  EXPECT_DOUBLE_EQ(decision.delay_ms, 2.0);
  injector.clear();
  EXPECT_FALSE(injector.active());
}

}  // namespace
}  // namespace pelican::fault
