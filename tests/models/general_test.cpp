#include "models/general.hpp"

#include <gtest/gtest.h>

#include "nn/metrics.hpp"
#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::models {
namespace {

using pelican::testing::trained_world;

TEST(GeneralModel, ArchitectureMatchesFig1a) {
  const auto& world = trained_world();
  const auto& model = world.general_model;
  // Two LSTM layers with dropout between, linear head.
  ASSERT_EQ(model.layer_count(), 3u);
  EXPECT_EQ(model.layer(0).kind(), "lstm");
  EXPECT_EQ(model.layer(1).kind(), "dropout");
  EXPECT_EQ(model.layer(2).kind(), "lstm");
  EXPECT_EQ(model.input_dim(), world.spec.input_dim());
  EXPECT_EQ(model.num_classes(), world.spec.num_locations);
}

TEST(GeneralModel, BeatsChanceOnItsTrainingDistribution) {
  const auto& world = trained_world();
  auto& model = const_cast<nn::SequenceClassifier&>(world.general_model);
  const double top1 = nn::topk_accuracy(model, *world.general_train, 1);
  const double chance = 1.0 / static_cast<double>(world.spec.num_locations);
  EXPECT_GT(top1, 4.0 * chance)
      << "general model failed to learn mobility structure";
}

TEST(GeneralModel, TopKGrowsWithK) {
  const auto& world = trained_world();
  auto& model = const_cast<nn::SequenceClassifier&>(world.general_model);
  const std::vector<std::size_t> ks = {1, 2, 3};
  const auto accs = nn::topk_accuracies(model, *world.general_train, ks);
  EXPECT_LE(accs[0], accs[1]);
  EXPECT_LE(accs[1], accs[2]);
}

TEST(GeneralModel, TrainingReportShowsLearning) {
  // Retrain a tiny general model to inspect the report.
  auto world = pelican::testing::make_untrained_world(3, 2, 0);
  std::vector<mobility::Window> pooled;
  for (const auto& trajectory : world.contributor_trajectories) {
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }
  const models::WindowDataset data(std::move(pooled), world.spec);

  GeneralModelConfig config;
  config.hidden_dim = 12;
  config.train.epochs = 4;
  config.train.lr = 3e-3;
  config.seed = 3;
  const GeneralModel result = train_general_model(data, config);
  ASSERT_EQ(result.report.epochs_run, 4u);
  EXPECT_LT(result.report.epoch_loss.back(), result.report.epoch_loss.front());
}

TEST(GeneralModel, DeterministicGivenSeed) {
  auto world = pelican::testing::make_untrained_world(2, 2, 0);
  std::vector<mobility::Window> pooled;
  for (const auto& trajectory : world.contributor_trajectories) {
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }
  const models::WindowDataset data(std::move(pooled), world.spec);

  GeneralModelConfig config;
  config.hidden_dim = 8;
  config.train.epochs = 2;
  config.seed = 9;
  GeneralModel a = train_general_model(data, config);
  GeneralModel b = train_general_model(data, config);
  EXPECT_EQ(a.report.epoch_loss, b.report.epoch_loss);

  nn::Sequence x;
  std::vector<std::int32_t> y;
  const std::vector<std::uint32_t> idx = {0, 1};
  data.materialize(idx, x, y);
  EXPECT_EQ(a.model.forward(x), b.model.forward(x));
}

TEST(GeneralModel, ValidationSourcePluggable) {
  auto world = pelican::testing::make_untrained_world(2, 2, 0);
  std::vector<mobility::Window> pooled;
  for (const auto& trajectory : world.contributor_trajectories) {
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }
  const auto split = mobility::split_windows(pooled, 0.8);
  const models::WindowDataset train(split.train, world.spec);
  const models::WindowDataset val(split.test, world.spec);

  GeneralModelConfig config;
  config.hidden_dim = 8;
  config.train.epochs = 3;
  const GeneralModel result = train_general_model(train, config, &val);
  EXPECT_EQ(result.report.validation_top1.size(), 3u);
}

}  // namespace
}  // namespace pelican::models
