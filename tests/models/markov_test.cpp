#include "models/markov.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace pelican::models {
namespace {

mobility::Window window_of(std::uint16_t older, std::uint16_t recent,
                           std::uint16_t next) {
  mobility::Window w;
  w.steps[0].location = older;
  w.steps[1].location = recent;
  w.next_location = next;
  return w;
}

TEST(MarkovChain, RejectsBadConstruction) {
  EXPECT_THROW(MarkovChain(0, 1), std::invalid_argument);
  EXPECT_THROW(MarkovChain(5, 3), std::invalid_argument);
  EXPECT_THROW(MarkovChain(5, 1, -1.0), std::invalid_argument);
}

TEST(MarkovChain, LearnsDeterministicFirstOrderTransitions) {
  MarkovChain chain(4, 1, 0.01);
  std::vector<mobility::Window> windows;
  // 1 -> 2 always; 2 -> 3 always.
  for (int i = 0; i < 10; ++i) {
    windows.push_back(window_of(0, 1, 2));
    windows.push_back(window_of(1, 2, 3));
  }
  chain.fit(windows);
  EXPECT_EQ(chain.observed_transitions(), 20u);

  const auto from1 = chain.predict(window_of(9 % 4, 1, 0));
  EXPECT_GT(from1[2], 0.9);
  const auto from2 = chain.predict(window_of(0, 2, 0));
  EXPECT_GT(from2[3], 0.9);
}

TEST(MarkovChain, PredictionsAreDistributions) {
  MarkovChain chain(6, 2, 0.1);
  std::vector<mobility::Window> windows;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    windows.push_back(window_of(static_cast<std::uint16_t>(rng.below(6)),
                                static_cast<std::uint16_t>(rng.below(6)),
                                static_cast<std::uint16_t>(rng.below(6))));
  }
  chain.fit(windows);
  for (int i = 0; i < 10; ++i) {
    const auto probs =
        chain.predict(window_of(static_cast<std::uint16_t>(rng.below(6)),
                                static_cast<std::uint16_t>(rng.below(6)), 0));
    double total = 0.0;
    for (const double p : probs) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovChain, SecondOrderDisambiguatesWhereFirstOrderCannot) {
  // Next location depends on where the user came FROM: (0,2)->1, (1,2)->3.
  // A first-order chain conditioned only on "at 2" must split; the
  // second-order chain should be near-certain.
  std::vector<mobility::Window> windows;
  for (int i = 0; i < 20; ++i) {
    windows.push_back(window_of(0, 2, 1));
    windows.push_back(window_of(1, 2, 3));
  }
  MarkovChain first(5, 1, 0.01);
  first.fit(windows);
  MarkovChain second(5, 2, 0.01);
  second.fit(windows);

  const auto first_probs = first.predict(window_of(0, 2, 0));
  EXPECT_NEAR(first_probs[1], first_probs[3], 0.05);  // ambiguous

  const auto second_probs = second.predict(window_of(0, 2, 0));
  EXPECT_GT(second_probs[1], 0.9);  // disambiguated by l_{t-2}
  EXPECT_LT(second_probs[3], 0.1);
}

TEST(MarkovChain, SecondOrderBacksOffToFirstOrder) {
  MarkovChain chain(5, 2, 0.01);
  std::vector<mobility::Window> windows;
  for (int i = 0; i < 10; ++i) windows.push_back(window_of(0, 1, 2));
  chain.fit(windows);
  // Context (3, 1) was never seen at order 2, but "at 1" was: back off.
  const auto probs = chain.predict(window_of(3, 1, 0));
  EXPECT_GT(probs[2], 0.9);
}

TEST(MarkovChain, UnseenContextFallsBackToMarginals) {
  MarkovChain chain(4, 1, 0.01);
  std::vector<mobility::Window> windows;
  for (int i = 0; i < 9; ++i) windows.push_back(window_of(0, 1, 3));
  windows.push_back(window_of(0, 1, 2));
  chain.fit(windows);
  // Location 2 as context was never observed -> marginal over nexts,
  // dominated by 3.
  const auto probs = chain.predict(window_of(1, 2, 0));
  EXPECT_GT(probs[3], probs[2]);
  EXPECT_GT(probs[3], 0.5);
}

TEST(MarkovChain, UntrainedPredictsUniform) {
  const MarkovChain chain(8, 1, 0.0);
  const auto probs = chain.predict(window_of(1, 2, 0));
  for (const double p : probs) EXPECT_NEAR(p, 1.0 / 8.0, 1e-12);
}

TEST(MarkovChain, CumulativeFitMatchesSingleFit) {
  std::vector<mobility::Window> windows;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    windows.push_back(window_of(static_cast<std::uint16_t>(rng.below(5)),
                                static_cast<std::uint16_t>(rng.below(5)),
                                static_cast<std::uint16_t>(rng.below(5))));
  }
  MarkovChain whole(5, 2, 0.05);
  whole.fit(windows);
  MarkovChain incremental(5, 2, 0.05);
  incremental.fit(std::span<const mobility::Window>(windows).subspan(0, 30));
  incremental.fit(std::span<const mobility::Window>(windows).subspan(30));

  for (int i = 0; i < 10; ++i) {
    const auto w = window_of(static_cast<std::uint16_t>(rng.below(5)),
                             static_cast<std::uint16_t>(rng.below(5)), 0);
    EXPECT_EQ(whole.predict(w), incremental.predict(w));
  }
}

TEST(MarkovChain, TopKAccuracyOnDeterministicChain) {
  MarkovChain chain(4, 1, 0.01);
  std::vector<mobility::Window> windows;
  for (int i = 0; i < 10; ++i) windows.push_back(window_of(0, 1, 2));
  chain.fit(windows);
  EXPECT_DOUBLE_EQ(chain.topk_accuracy(windows, 1), 1.0);
  EXPECT_DOUBLE_EQ(chain.topk_accuracy({}, 1), 0.0);

  const std::vector<mobility::Window> wrong = {window_of(0, 1, 3)};
  EXPECT_DOUBLE_EQ(chain.topk_accuracy(wrong, 1), 0.0);
  EXPECT_LE(chain.topk_accuracy(wrong, 1),
            chain.topk_accuracy(wrong, 4));  // monotone in k
}

TEST(MarkovChain, FitRejectsOutOfDomain) {
  MarkovChain chain(3, 1);
  const std::vector<mobility::Window> bad = {window_of(0, 1, 3)};
  EXPECT_THROW(chain.fit(bad), std::out_of_range);
  EXPECT_THROW((void)chain.predict(window_of(7, 0, 0)), std::out_of_range);
}

}  // namespace
}  // namespace pelican::models
