#include "models/personalize.hpp"

#include <gtest/gtest.h>

#include "nn/metrics.hpp"
#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::models {
namespace {

using pelican::testing::trained_world;

PersonalizationConfig fast_config(PersonalizationMethod method) {
  PersonalizationConfig config;
  config.method = method;
  config.train.epochs = 6;
  config.train.batch_size = 32;
  config.train.lr = 3e-3;
  config.fresh_hidden_dim = 16;
  config.seed = 5;
  return config;
}

TEST(Personalize, ReuseIsExactlyTheGeneralModel) {
  const auto& world = trained_world();
  const models::WindowDataset user_data(world.user0_train, world.spec);
  const auto result =
      personalize(world.general_model, user_data,
                  fast_config(PersonalizationMethod::kReuse));

  nn::Sequence x;
  std::vector<std::int32_t> y;
  const std::vector<std::uint32_t> idx = {0, 1, 2};
  user_data.materialize(idx, x, y);
  auto& general = const_cast<nn::SequenceClassifier&>(world.general_model);
  auto& reused = const_cast<nn::SequenceClassifier&>(result.model);
  EXPECT_EQ(general.forward(x), reused.forward(x));
  EXPECT_TRUE(result.report.epoch_loss.empty());  // no training happened
}

TEST(Personalize, FeatureExtractionArchitecture) {
  const auto& world = trained_world();
  const models::WindowDataset user_data(world.user0_train, world.spec);
  const auto result =
      personalize(world.general_model, user_data,
                  fast_config(PersonalizationMethod::kFeatureExtraction));
  const auto& model = result.model;

  // Fig. 1b: general layers + one surplus LSTM stacked before the head.
  ASSERT_EQ(model.layer_count(), world.general_model.layer_count() + 1);
  EXPECT_EQ(model.layer(model.layer_count() - 1).kind(), "lstm");
  for (std::size_t i = 0; i + 1 < model.layer_count(); ++i) {
    EXPECT_FALSE(model.layer(i).trainable())
        << "general layer " << i << " must be frozen";
  }
  EXPECT_TRUE(model.layer(model.layer_count() - 1).trainable());
  EXPECT_TRUE(model.head().trainable());
}

TEST(Personalize, FeatureExtractionFreezesGeneralWeightsBitExact) {
  const auto& world = trained_world();
  const models::WindowDataset user_data(world.user0_train, world.spec);
  const auto result =
      personalize(world.general_model, user_data,
                  fast_config(PersonalizationMethod::kFeatureExtraction));

  auto& general = const_cast<nn::SequenceClassifier&>(world.general_model);
  auto& personal = const_cast<nn::SequenceClassifier&>(result.model);
  // Every frozen tensor equals the general model's, bit for bit.
  for (std::size_t i = 0; i < general.layer_count(); ++i) {
    const auto general_params = general.layer(i).parameters();
    const auto personal_params = personal.layer(i).parameters();
    ASSERT_EQ(general_params.size(), personal_params.size());
    for (std::size_t p = 0; p < general_params.size(); ++p) {
      EXPECT_EQ(*general_params[p], *personal_params[p])
          << "layer " << i << " tensor " << p << " drifted";
    }
  }
}

TEST(Personalize, FineTuningFreezesOnlyEarlyLayers) {
  const auto& world = trained_world();
  const models::WindowDataset user_data(world.user0_train, world.spec);
  const auto result =
      personalize(world.general_model, user_data,
                  fast_config(PersonalizationMethod::kFineTuning));
  const auto& model = result.model;

  // Fig. 1c: same depth; first LSTM frozen, second LSTM + head trainable.
  ASSERT_EQ(model.layer_count(), world.general_model.layer_count());
  EXPECT_FALSE(model.layer(0).trainable());
  EXPECT_TRUE(model.layer(model.layer_count() - 1).trainable());
  EXPECT_TRUE(model.head().trainable());

  // Frozen first LSTM is bit-identical to the general model's.
  auto& general = const_cast<nn::SequenceClassifier&>(world.general_model);
  auto& personal = const_cast<nn::SequenceClassifier&>(result.model);
  EXPECT_EQ(*general.layer(0).parameters()[0],
            *personal.layer(0).parameters()[0]);
  // The tuned second LSTM must have moved.
  EXPECT_NE(*general.layer(2).parameters()[0],
            *personal.layer(2).parameters()[0]);
}

TEST(Personalize, FreshLstmIsSingleLayer) {
  const auto& world = trained_world();
  const models::WindowDataset user_data(world.user0_train, world.spec);
  auto config = fast_config(PersonalizationMethod::kFreshLstm);
  const auto result = personalize(world.general_model, user_data, config);
  // One LSTM (+ dropout) + head, sized by fresh_hidden_dim.
  EXPECT_LE(result.model.layer_count(), 2u);
  EXPECT_EQ(result.model.layer(0).kind(), "lstm");
  EXPECT_EQ(result.model.head().input_dim(), config.fresh_hidden_dim);
}

TEST(Personalize, TransferLearningBeatsReuseForRoutineUser) {
  const auto& world = trained_world();
  const models::WindowDataset test_data(world.user0_test, world.spec);

  auto& reuse_model = const_cast<nn::SequenceClassifier&>(world.general_model);
  auto& fe_model = const_cast<nn::SequenceClassifier&>(world.personal_model);
  const double reuse_top3 = nn::topk_accuracy(reuse_model, test_data, 3);
  const double fe_top3 = nn::topk_accuracy(fe_model, test_data, 3);
  // Table III: personalization helps (allow equality at tiny test scale).
  EXPECT_GE(fe_top3 + 0.05, reuse_top3);
  EXPECT_GT(fe_top3, 0.2);
}

TEST(Personalize, MethodNamesMatchPaperTables) {
  EXPECT_STREQ(to_string(PersonalizationMethod::kReuse), "Reuse");
  EXPECT_STREQ(to_string(PersonalizationMethod::kFreshLstm), "LSTM");
  EXPECT_STREQ(to_string(PersonalizationMethod::kFeatureExtraction), "TL FE");
  EXPECT_STREQ(to_string(PersonalizationMethod::kFineTuning), "TL FT");
}

TEST(UpdatePersonalized, WarmStartsFromCurrentModel) {
  const auto& world = trained_world();
  const models::WindowDataset user_data(world.user0_train, world.spec);

  auto config = fast_config(PersonalizationMethod::kFeatureExtraction);
  config.train.epochs = 2;
  const auto updated =
      update_personalized(world.personal_model, user_data, config);

  // Architecture unchanged; frozen layers still frozen.
  ASSERT_EQ(updated.model.layer_count(), world.personal_model.layer_count());
  for (std::size_t i = 0; i + 1 < updated.model.layer_count(); ++i) {
    EXPECT_FALSE(updated.model.layer(i).trainable());
  }
  EXPECT_EQ(updated.report.epochs_run, 2u);
}

TEST(UpdatePersonalized, ReuseUpdateIsNoop) {
  const auto& world = trained_world();
  const models::WindowDataset user_data(world.user0_train, world.spec);
  auto config = fast_config(PersonalizationMethod::kReuse);
  const auto updated =
      update_personalized(world.general_model, user_data, config);
  EXPECT_TRUE(updated.report.epoch_loss.empty());
}

}  // namespace
}  // namespace pelican::models
