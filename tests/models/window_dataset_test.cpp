#include "models/window_dataset.hpp"

#include <gtest/gtest.h>

#include "mobility/campus.hpp"

namespace pelican::models {
namespace {

using mobility::Campus;
using mobility::CampusConfig;
using mobility::EncodingSpec;
using mobility::kWindowSteps;
using mobility::SpatialLevel;
using mobility::Window;

TEST(EncodeWindow, ExactlyFourOnesPerStep) {
  EncodingSpec spec{SpatialLevel::kBuilding, 10};
  Window w;
  w.steps[0] = {5, 3, 2, 7};
  w.steps[1] = {6, 0, 2, 1};
  w.next_location = 4;

  nn::Sequence x(kWindowSteps, nn::Matrix(1, spec.input_dim(), 0.0f));
  encode_window(w, spec, x, 0);

  for (std::size_t t = 0; t < kWindowSteps; ++t) {
    float total = 0.0f;
    for (const float v : x[t].row(0)) {
      EXPECT_TRUE(v == 0.0f || v == 1.0f);
      total += v;
    }
    EXPECT_FLOAT_EQ(total, 4.0f) << "step " << t;
  }
  EXPECT_FLOAT_EQ(x[0](0, spec.entry_offset() + 5), 1.0f);
  EXPECT_FLOAT_EQ(x[0](0, spec.duration_offset() + 3), 1.0f);
  EXPECT_FLOAT_EQ(x[0](0, spec.location_offset() + 7), 1.0f);
  EXPECT_FLOAT_EQ(x[0](0, spec.day_offset() + 2), 1.0f);
  EXPECT_FLOAT_EQ(x[1](0, spec.location_offset() + 1), 1.0f);
}

TEST(EncodeWindow, RejectsOutOfDomainLocation) {
  EncodingSpec spec{SpatialLevel::kBuilding, 4};
  Window w;
  w.steps[0].location = 4;  // out of domain
  nn::Sequence x(kWindowSteps, nn::Matrix(1, spec.input_dim(), 0.0f));
  EXPECT_THROW(encode_window(w, spec, x, 0), std::out_of_range);
}

TEST(WindowDataset, MaterializesBatches) {
  EncodingSpec spec{SpatialLevel::kBuilding, 8};
  std::vector<Window> windows(5);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    windows[i].steps[0].location = static_cast<std::uint16_t>(i % 8);
    windows[i].steps[1].location = static_cast<std::uint16_t>((i + 1) % 8);
    windows[i].next_location = static_cast<std::uint16_t>((i + 2) % 8);
  }
  const WindowDataset data(windows, spec);
  EXPECT_EQ(data.size(), 5u);
  EXPECT_EQ(data.seq_len(), kWindowSteps);
  EXPECT_EQ(data.input_dim(), spec.input_dim());
  EXPECT_EQ(data.num_classes(), 8u);

  nn::Sequence x;
  std::vector<std::int32_t> y;
  const std::vector<std::uint32_t> idx = {4, 0};
  data.materialize(idx, x, y);
  ASSERT_EQ(x.size(), kWindowSteps);
  EXPECT_EQ(x[0].rows(), 2u);
  EXPECT_EQ(y[0], 6);  // window 4: (4+2)%8
  EXPECT_EQ(y[1], 2);  // window 0
  EXPECT_FLOAT_EQ(x[0](0, spec.location_offset() + 4), 1.0f);
  EXPECT_FLOAT_EQ(x[0](1, spec.location_offset() + 0), 1.0f);
}

TEST(WindowDataset, RejectsLabelOutsideDomain) {
  EncodingSpec spec{SpatialLevel::kBuilding, 4};
  std::vector<Window> windows(1);
  windows[0].next_location = 4;
  EXPECT_THROW(WindowDataset(windows, spec), std::out_of_range);
}

TEST(WindowDataset, DomainEqualizationUsesFullCampus) {
  // A user who only ever visits 3 buildings still gets encoded over the
  // whole campus domain (Section III-A3).
  CampusConfig config;
  config.buildings = 25;
  config.mean_aps_per_building = 3;
  const Campus campus = Campus::generate(config, 3);
  const auto spec =
      EncodingSpec::for_campus(campus, SpatialLevel::kBuilding);
  EXPECT_EQ(spec.num_locations, 25u);

  std::vector<Window> windows(1);
  windows[0].steps[0].location = 1;
  windows[0].steps[1].location = 2;
  windows[0].next_location = 1;
  const WindowDataset data(windows, spec);
  EXPECT_EQ(data.num_classes(), 25u);
  EXPECT_EQ(data.input_dim(), 48u + 24u + 25u + 7u);
}

}  // namespace
}  // namespace pelican::models
