#include "attack/gradient_attack.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/trainer.hpp"
#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::attack {
namespace {

/// Windows whose label equals the sensitive step-1 location — the easiest
/// possible inversion target: a model fitting this task is (nearly) a
/// differentiable identity on the location block.
std::vector<mobility::Window> copy_task_windows(std::size_t n,
                                                std::size_t locations,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<mobility::Window> windows(n);
  for (auto& w : windows) {
    w.steps[0] = {static_cast<std::uint8_t>(rng.below(48)),
                  static_cast<std::uint8_t>(rng.below(24)),
                  static_cast<std::uint8_t>(rng.below(7)),
                  static_cast<std::uint16_t>(rng.below(locations))};
    w.steps[1] = {static_cast<std::uint8_t>(rng.below(48)),
                  static_cast<std::uint8_t>(rng.below(24)),
                  static_cast<std::uint8_t>(rng.below(7)),
                  static_cast<std::uint16_t>(rng.below(locations))};
    w.next_location = w.steps[1].location;
  }
  return windows;
}

InversionConfig base_config() {
  InversionConfig config;
  config.adversary = Adversary::kA1;
  config.method = AttackMethod::kGradientDescent;
  config.ks = {1, 3};
  config.max_windows = 25;
  return config;
}

class GradientAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = {mobility::SpatialLevel::kBuilding, 10};
    windows_ = copy_task_windows(400, 10, 3);
    const models::WindowDataset data(windows_, spec_);
    Rng rng(4);
    model_ = nn::make_one_layer_lstm(spec_.input_dim(), 24, 10, 0.0, rng);
    nn::TrainConfig tc;
    tc.epochs = 20;
    tc.batch_size = 32;
    tc.lr = 5e-3;
    (void)nn::train(model_, data, tc);
  }

  mobility::EncodingSpec spec_;
  std::vector<mobility::Window> windows_;
  nn::SequenceClassifier model_;
};

TEST_F(GradientAttackTest, RecoversLocationOnCopyTask) {
  const std::vector<double> uniform(10, 0.1);
  GradientAttackConfig gc;
  gc.iterations = 120;
  const auto result = run_gradient_inversion(model_, spec_, windows_,
                                             uniform, base_config(), gc);
  ASSERT_EQ(result.windows_attacked, 25u);
  // On the copy task the gradient signal points straight at the true
  // location: far better than the 10% chance rate.
  EXPECT_GT(result.at_k(1), 0.4);
  EXPECT_GT(result.at_k(3), 0.6);
}

TEST_F(GradientAttackTest, MoreIterationsDoNotHurt) {
  const std::vector<double> uniform(10, 0.1);
  GradientAttackConfig few;
  few.iterations = 5;
  GradientAttackConfig many;
  many.iterations = 150;
  const auto weak = run_gradient_inversion(model_, spec_, windows_, uniform,
                                           base_config(), few);
  const auto strong = run_gradient_inversion(model_, spec_, windows_,
                                             uniform, base_config(), many);
  EXPECT_GE(strong.at_k(3) + 0.15, weak.at_k(3));
}

TEST_F(GradientAttackTest, DeterministicGivenSameInputs) {
  const std::vector<double> uniform(10, 0.1);
  GradientAttackConfig gc;
  gc.iterations = 30;
  auto config = base_config();
  config.max_windows = 5;
  const auto a =
      run_gradient_inversion(model_, spec_, windows_, uniform, config, gc);
  const auto b =
      run_gradient_inversion(model_, spec_, windows_, uniform, config, gc);
  EXPECT_EQ(a.topk_accuracy, b.topk_accuracy);
}

TEST_F(GradientAttackTest, ValidatesArguments) {
  const std::vector<double> uniform(10, 0.1);
  GradientAttackConfig zero_iters;
  zero_iters.iterations = 0;
  EXPECT_THROW((void)run_gradient_inversion(model_, spec_, windows_, uniform,
                                            base_config(), zero_iters),
               std::invalid_argument);
  const std::vector<double> bad_prior(3, 1.0 / 3.0);
  EXPECT_THROW((void)run_gradient_inversion(model_, spec_, windows_,
                                            bad_prior, base_config(),
                                            GradientAttackConfig{}),
               std::invalid_argument);
}

TEST_F(GradientAttackTest, CountsForwardPasses) {
  const std::vector<double> uniform(10, 0.1);
  GradientAttackConfig gc;
  gc.iterations = 10;
  auto config = base_config();
  config.max_windows = 3;
  const auto result =
      run_gradient_inversion(model_, spec_, windows_, uniform, config, gc);
  EXPECT_EQ(result.model_queries, 30u);  // iterations x windows
}

TEST(GradientAttackRealModel, WeakerThanTimeBasedOnMobility) {
  // The paper's Fig. 2a finding: on a real (discrete, routine-dominated)
  // mobility model, gradient descent reconstructs history far worse than
  // time-based enumeration.
  const auto& world = pelican::testing::trained_world();
  auto& model = const_cast<nn::SequenceClassifier&>(world.personal_model);
  PlainBlackBox box(model, world.spec);
  const auto prior = make_prior(PriorKind::kTrue, world.user0_train, box,
                                world.user0_test);

  InversionConfig config;
  config.adversary = Adversary::kA1;
  config.ks = {3};
  config.max_windows = 30;

  config.method = AttackMethod::kTimeBased;
  const auto time_based = run_inversion(box, world.user0_train,
                                        world.user0_test, prior, config);

  config.method = AttackMethod::kGradientDescent;
  GradientAttackConfig gc;
  gc.iterations = 80;
  const auto gradient = run_gradient_inversion(
      model, world.spec, world.user0_train, prior, config, gc);

  EXPECT_LE(gradient.at_k(3), time_based.at_k(3) + 0.1)
      << "gradient attack should not beat enumeration on mobility data";
}

}  // namespace
}  // namespace pelican::attack
