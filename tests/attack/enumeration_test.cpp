#include "attack/enumeration.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pelican::attack {
namespace {

using mobility::kDurationBins;
using mobility::kEntryBins;
using mobility::StepFeatures;
using mobility::Window;

Window sample_window() {
  Window w;
  w.steps[0] = {18, 8, 2, 5};  // 09:00, ~85 min, Wednesday, building 5
  w.steps[1] = {21, 3, 2, 1};  // derived-consistent next step
  w.next_location = 4;
  return w;
}

std::vector<std::uint16_t> locations(std::initializer_list<std::uint16_t> l) {
  return l;
}

TEST(DeriveBins, NextEntryFromContiguity) {
  // 09:00 (bin 18) + 85 min (bin 8 -> 80 min) = 10:20 -> bin 20.
  EXPECT_EQ(derive_next_entry_bin(18, 8), 20);
  // Zero duration keeps the bin.
  EXPECT_EQ(derive_next_entry_bin(18, 0), 18);
}

TEST(DeriveBins, NextEntryWrapsAtMidnight) {
  // 23:30 (bin 47) + 230 min (bin 23) = 27:20 -> 03:20 next day -> bin 6.
  EXPECT_EQ(derive_next_entry_bin(47, 23), 6);
  EXPECT_TRUE(crosses_midnight(47, 23));
  EXPECT_FALSE(crosses_midnight(18, 8));
}

TEST(DeriveBins, PrevEntryInverse) {
  // 10:20 (bin 20) - 80 min = 09:00 -> bin 18.
  EXPECT_EQ(derive_prev_entry_bin(20, 8), 18);
  // Wrap backwards: 00:00 (bin 0) - 30 min = 23:30 previous day -> bin 47.
  EXPECT_EQ(derive_prev_entry_bin(0, 3), 47);
}

TEST(DeriveBins, RoundTripWhenBinAligned) {
  // For durations that are multiples of 30 min, derive_prev inverts
  // derive_next exactly.
  for (std::uint8_t e = 0; e < kEntryBins; ++e) {
    for (const std::uint8_t d : {std::uint8_t{0}, std::uint8_t{3},
                                 std::uint8_t{6}, std::uint8_t{12}}) {
      const std::uint8_t next = derive_next_entry_bin(e, d);
      EXPECT_EQ(derive_prev_entry_bin(next, d), e)
          << "e=" << int(e) << " d=" << int(d);
    }
  }
}

TEST(BruteForce, EnumeratesFullFeatureSpace) {
  const Window w = sample_window();
  const auto guesses = locations({0, 1, 2, 3, 4, 5});
  const auto candidates = enumerate_candidates(
      AttackMethod::kBruteForce, Adversary::kA1, w, guesses, {});
  EXPECT_EQ(candidates.size(),
            static_cast<std::size_t>(kEntryBins) * kDurationBins *
                guesses.size() * 7);

  // Known step is never modified; every candidate guesses at step 1.
  for (std::size_t i = 0; i < candidates.size(); i += 997) {
    EXPECT_EQ(candidates[i].steps[0], w.steps[0]);
    EXPECT_EQ(candidates[i].guess, candidates[i].steps[1].location);
  }
}

TEST(BruteForce, A2ModifiesStepZero) {
  const Window w = sample_window();
  const auto guesses = locations({0, 1});
  const auto candidates = enumerate_candidates(
      AttackMethod::kBruteForce, Adversary::kA2, w, guesses, {});
  for (std::size_t i = 0; i < candidates.size(); i += 131) {
    EXPECT_EQ(candidates[i].steps[1], w.steps[1]);
    EXPECT_EQ(candidates[i].guess, candidates[i].steps[0].location);
  }
}

TEST(BruteForce, ThrowsForA3) {
  const Window w = sample_window();
  const auto guesses = locations({0});
  EXPECT_THROW((void)enumerate_candidates(AttackMethod::kBruteForce,
                                          Adversary::kA3, w, guesses, {}),
               std::invalid_argument);
}

TEST(TimeBasedA1, DerivesEntryAndDayEnumeratesDurationLocation) {
  const Window w = sample_window();
  const auto guesses = locations({2, 4, 9});
  const auto candidates = enumerate_candidates(
      AttackMethod::kTimeBased, Adversary::kA1, w, guesses, {});
  EXPECT_EQ(candidates.size(),
            static_cast<std::size_t>(kDurationBins) * guesses.size());

  const std::uint8_t expected_entry = derive_next_entry_bin(18, 8);
  std::set<std::uint16_t> guessed;
  for (const Candidate& c : candidates) {
    EXPECT_EQ(c.steps[0], w.steps[0]);          // known step untouched
    EXPECT_EQ(c.steps[1].entry_bin, expected_entry);
    EXPECT_EQ(c.steps[1].day_of_week, w.steps[0].day_of_week);
    EXPECT_EQ(c.guess, c.steps[1].location);
    guessed.insert(c.guess);
  }
  EXPECT_EQ(guessed, std::set<std::uint16_t>({2, 4, 9}));
}

TEST(TimeBasedA1, TrueCandidatePresentForContiguousSessions) {
  // Construct a bin-aligned contiguous pair: the enumeration must contain
  // the exact true step (the attack's completeness property).
  Window w;
  w.steps[0] = {10, 6, 1, 3};  // 05:00, 60 min
  w.steps[1] = {12, 9, 1, 7};  // 06:00 (= 05:00 + 60 min), 90 min
  w.next_location = 2;
  const auto guesses = locations({5, 7, 9});
  const auto candidates = enumerate_candidates(
      AttackMethod::kTimeBased, Adversary::kA1, w, guesses, {});
  const bool found =
      std::any_of(candidates.begin(), candidates.end(),
                  [&](const Candidate& c) { return c.steps[1] == w.steps[1]; });
  EXPECT_TRUE(found);
}

TEST(TimeBasedA1, AdvancesDayAcrossMidnight) {
  Window w;
  w.steps[0] = {47, 23, 4, 3};  // 23:30 Friday, capped-long stay
  w.steps[1] = {6, 2, 5, 1};
  const auto candidates = enumerate_candidates(
      AttackMethod::kTimeBased, Adversary::kA1, w, locations({1}), {});
  for (const Candidate& c : candidates) {
    EXPECT_EQ(c.steps[1].day_of_week, 5);  // Saturday
  }
}

TEST(TimeBasedA2, DerivesBackwardsPerDuration) {
  const Window w = sample_window();
  const auto guesses = locations({0, 5});
  const auto candidates = enumerate_candidates(
      AttackMethod::kTimeBased, Adversary::kA2, w, guesses, {});
  EXPECT_EQ(candidates.size(),
            static_cast<std::size_t>(kDurationBins) * guesses.size());
  for (const Candidate& c : candidates) {
    EXPECT_EQ(c.steps[1], w.steps[1]);
    EXPECT_EQ(c.steps[0].entry_bin,
              derive_prev_entry_bin(w.steps[1].entry_bin,
                                    c.steps[0].duration_bin));
    EXPECT_EQ(c.guess, c.steps[0].location);
  }
}

TEST(TimeBasedA3, MarginalizesContextOverTemplates) {
  const Window w = sample_window();
  const auto guesses = locations({1, 2, 3});
  std::vector<double> prior(10, 0.0);
  prior[7] = 0.6;
  prior[2] = 0.3;
  prior[5] = 0.1;
  const auto candidates = enumerate_candidates(
      AttackMethod::kTimeBased, Adversary::kA3, w, guesses, prior);
  ASSERT_FALSE(candidates.empty());

  // Context locations for the older step come from the prior's top mass.
  std::set<std::uint16_t> context_locations;
  std::set<std::uint16_t> guessed;
  for (const Candidate& c : candidates) {
    context_locations.insert(c.steps[0].location);
    guessed.insert(c.guess);
    EXPECT_EQ(c.guess, c.steps[1].location);
  }
  EXPECT_EQ(context_locations, std::set<std::uint16_t>({7, 2, 5}));
  EXPECT_EQ(guessed, std::set<std::uint16_t>({1, 2, 3}));
  // A3 does not use any ground-truth feature of the attacked window.
}

TEST(BruteForce, ParallelEnumerationMatchesSerialOrdering) {
  // The parallel path fills disjoint per-entry-bin slices across the thread
  // pool; the merged candidate list must be element-for-element identical to
  // the serial reference (deterministic merge), for both adversaries.
  const Window w = sample_window();
  const auto guesses = locations({0, 3, 5, 9});
  for (const Adversary adversary : {Adversary::kA1, Adversary::kA2}) {
    const auto serial =
        enumerate_candidates(AttackMethod::kBruteForce, adversary, w, guesses,
                             {}, /*parallel=*/false);
    const auto parallel =
        enumerate_candidates(AttackMethod::kBruteForce, adversary, w, guesses,
                             {}, /*parallel=*/true);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].guess, parallel[i].guess) << "index " << i;
      for (std::size_t s = 0; s < mobility::kWindowSteps; ++s) {
        ASSERT_EQ(serial[i].steps[s], parallel[i].steps[s]) << "index " << i;
      }
    }
  }
}

TEST(Enumeration, RejectsEmptyGuessSetAndGradientMethod) {
  const Window w = sample_window();
  EXPECT_THROW((void)enumerate_candidates(AttackMethod::kTimeBased,
                                          Adversary::kA1, w, {}, {}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)enumerate_candidates(AttackMethod::kGradientDescent,
                                 Adversary::kA1, w, locations({1}), {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace pelican::attack
