#include "attack/inversion.hpp"

#include <gtest/gtest.h>

#include "fake_blackbox.hpp"
#include "support/world.hpp"

namespace pelican::attack {
namespace {

using pelican::testing::trained_world;
using testing::PlantedBlackBox;

mobility::EncodingSpec small_spec() {
  return {mobility::SpatialLevel::kBuilding, 8};
}

std::vector<mobility::Window> planted_windows(std::uint16_t secret_location,
                                              std::uint16_t next,
                                              std::size_t n) {
  std::vector<mobility::Window> windows(n);
  for (std::size_t i = 0; i < n; ++i) {
    windows[i].steps[0] = {10, 6, 1, 3};
    windows[i].steps[1] = {12, static_cast<std::uint8_t>(i % 24), 1,
                           secret_location};
    windows[i].next_location = next;
  }
  return windows;
}

InversionConfig base_config() {
  InversionConfig config;
  config.adversary = Adversary::kA1;
  config.method = AttackMethod::kTimeBased;
  config.ks = {1, 3};
  return config;
}

TEST(Inversion, RecoversPlantedSecretLocation) {
  PlantedBlackBox model(small_spec(), /*sensitive_step=*/1,
                        /*secret_location=*/6, /*secret_output=*/2);
  const auto targets = planted_windows(6, 2, 10);
  const std::vector<double> uniform(8, 1.0 / 8.0);

  auto config = base_config();
  config.loi_threshold = 1e-6;  // keep all 8 locations in the guess set
  const auto result =
      run_inversion(model, targets, targets, uniform, config);

  ASSERT_EQ(result.windows_attacked, 10u);
  EXPECT_DOUBLE_EQ(result.at_k(1), 1.0)
      << "the planted location maximizes confidence x prior and must win";
  EXPECT_DOUBLE_EQ(result.at_k(3), 1.0);
}

TEST(Inversion, PriorBreaksConfidenceTies) {
  // A model whose confidence is flat: only the prior can rank guesses.
  PlantedBlackBox model(small_spec(), 1, /*secret_location=*/6,
                        /*secret_output=*/2, /*hot=*/0.3f, /*cold=*/0.3f);
  const auto targets = planted_windows(4, 2, 6);  // true location is 4
  std::vector<double> prior(8, 0.01);
  prior[4] = 0.93;  // adversary's prior points at the truth

  auto config = base_config();
  config.loi_threshold = 1e-9;
  const auto result =
      run_inversion(model, targets, targets, prior, config);
  EXPECT_DOUBLE_EQ(result.at_k(1), 1.0);
}

TEST(Inversion, BruteForceMatchesTimeBasedOnPlantedModel) {
  PlantedBlackBox model(small_spec(), 1, 5, 3);
  const auto targets = planted_windows(5, 3, 4);
  const std::vector<double> uniform(8, 1.0 / 8.0);

  auto tb = base_config();
  tb.loi_threshold = 1e-9;
  const auto time_based =
      run_inversion(model, targets, targets, uniform, tb);

  auto bf = base_config();
  bf.method = AttackMethod::kBruteForce;
  const auto brute = run_inversion(model, targets, targets, uniform, bf);

  EXPECT_DOUBLE_EQ(time_based.at_k(1), brute.at_k(1));
  EXPECT_GT(brute.model_queries, time_based.model_queries * 50)
      << "brute force must enumerate a much larger space";
}

TEST(Inversion, MaxWindowsLimitsWork) {
  PlantedBlackBox model(small_spec(), 1, 5, 3);
  const auto targets = planted_windows(5, 3, 20);
  const std::vector<double> uniform(8, 1.0 / 8.0);
  auto config = base_config();
  config.max_windows = 7;
  const auto result =
      run_inversion(model, targets, targets, uniform, config);
  EXPECT_EQ(result.windows_attacked, 7u);
}

TEST(Inversion, ResultAccessorsAndValidation) {
  PlantedBlackBox model(small_spec(), 1, 5, 3);
  const auto targets = planted_windows(5, 3, 2);
  const std::vector<double> uniform(8, 1.0 / 8.0);
  const auto result =
      run_inversion(model, targets, targets, uniform, base_config());
  EXPECT_NO_THROW((void)result.at_k(1));
  EXPECT_THROW((void)result.at_k(99), std::invalid_argument);
  EXPECT_GT(result.attack_seconds, 0.0);
  EXPECT_GT(result.model_queries, 0u);

  const std::vector<double> bad_prior(3, 1.0 / 3.0);
  EXPECT_THROW((void)run_inversion(model, targets, targets, bad_prior,
                                   base_config()),
               std::invalid_argument);

  auto no_ks = base_config();
  no_ks.ks.clear();
  EXPECT_THROW((void)run_inversion(model, targets, targets, uniform, no_ks),
               std::invalid_argument);
}

TEST(Inversion, ScoreCandidatesExposesPerLocationScores) {
  PlantedBlackBox model(small_spec(), 1, 6, 2);
  const auto targets = planted_windows(6, 2, 1);
  const std::vector<double> uniform(8, 1.0 / 8.0);
  std::vector<std::uint16_t> guesses = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto candidates =
      enumerate_candidates(AttackMethod::kTimeBased, Adversary::kA1,
                           targets[0], guesses, uniform);
  const auto scores =
      score_candidates(model, candidates, targets[0].next_location, uniform,
                       /*query_batch=*/16);
  ASSERT_EQ(scores.size(), 8u);
  for (std::size_t l = 0; l < 8; ++l) {
    if (l != 6) { EXPECT_GT(scores[6], scores[l]); }
  }
}

TEST(Inversion, AdversaryA2RecoversOlderStep) {
  PlantedBlackBox model(small_spec(), /*sensitive_step=*/0,
                        /*secret_location=*/3, /*secret_output=*/1);
  std::vector<mobility::Window> targets(6);
  for (auto& w : targets) {
    w.steps[0] = {10, 6, 1, 3};  // secret older step
    w.steps[1] = {12, 4, 1, 5};
    w.next_location = 1;
  }
  const std::vector<double> uniform(8, 1.0 / 8.0);
  auto config = base_config();
  config.adversary = Adversary::kA2;
  config.loi_threshold = 1e-9;
  const auto result =
      run_inversion(model, targets, targets, uniform, config);
  EXPECT_DOUBLE_EQ(result.at_k(1), 1.0);
}

TEST(Inversion, AdversaryA3RecoversWithNoKnownFeatures) {
  PlantedBlackBox model(small_spec(), /*sensitive_step=*/1,
                        /*secret_location=*/2, /*secret_output=*/7);
  const auto targets = planted_windows(2, 7, 5);
  std::vector<double> prior(8, 1.0 / 8.0);
  auto config = base_config();
  config.adversary = Adversary::kA3;
  config.loi_threshold = 1e-9;
  const auto result =
      run_inversion(model, targets, targets, prior, config);
  EXPECT_DOUBLE_EQ(result.at_k(1), 1.0);
}

TEST(Inversion, EndToEndOnTrainedPersonalModel) {
  // Attack the real personalized model from the shared world: top-3 attack
  // accuracy must beat blind guessing by a clear margin (C3's core claim).
  const auto& world = trained_world();
  auto& model = const_cast<nn::SequenceClassifier&>(world.personal_model);
  PlainBlackBox box(model, world.spec);

  const auto prior = make_prior(PriorKind::kTrue, world.user0_train, box,
                                world.user0_test);
  InversionConfig config;
  config.adversary = Adversary::kA1;
  config.method = AttackMethod::kTimeBased;
  config.ks = {1, 3};
  config.max_windows = 40;
  const auto result =
      run_inversion(box, world.user0_train, world.user0_test, prior, config);

  const double chance_top3 =
      3.0 / static_cast<double>(world.spec.num_locations);
  EXPECT_GT(result.at_k(3), chance_top3 + 0.15)
      << "inversion attack failed to leak historical locations";
}

}  // namespace
}  // namespace pelican::attack
