#include "attack/prior.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "fake_blackbox.hpp"

namespace pelican::attack {
namespace {

using testing::PlantedBlackBox;

mobility::EncodingSpec small_spec() {
  return {mobility::SpatialLevel::kBuilding, 8};
}

std::vector<mobility::Window> some_windows(std::size_t n) {
  std::vector<mobility::Window> windows(n);
  for (std::size_t i = 0; i < n; ++i) {
    windows[i].steps[0].location = static_cast<std::uint16_t>(i % 8);
    windows[i].steps[1].location = static_cast<std::uint16_t>((i * 3) % 8);
    windows[i].next_location = static_cast<std::uint16_t>((i + 1) % 8);
  }
  return windows;
}

TEST(Prior, TrueUsesTrainingMarginals) {
  PlantedBlackBox model(small_spec(), 1, 2, 3);
  std::vector<mobility::Window> train(2);
  train[0].steps[0].location = 5;
  train[0].steps[1].location = 5;
  train[1].steps[0].location = 5;
  train[1].steps[1].location = 1;
  const auto p =
      make_prior(PriorKind::kTrue, train, model, some_windows(3));
  EXPECT_DOUBLE_EQ(p[5], 0.75);
  EXPECT_DOUBLE_EQ(p[1], 0.25);
  EXPECT_EQ(model.queries(), 0u) << "true prior must not query the model";
}

TEST(Prior, NoneIsUniform) {
  PlantedBlackBox model(small_spec(), 1, 2, 3);
  const auto p = make_prior(PriorKind::kNone, {}, model, some_windows(3));
  for (const double v : p) EXPECT_DOUBLE_EQ(v, 1.0 / 8.0);
}

TEST(Prior, PredictAveragesModelOutputs) {
  PlantedBlackBox model(small_spec(), 1, /*secret_location=*/2,
                        /*secret_output=*/3);
  const auto p =
      make_prior(PriorKind::kPredict, {}, model, some_windows(8));
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-5);
  // Class 3 is the planted model's favorite output.
  for (std::size_t c = 0; c < p.size(); ++c) {
    if (c != 3) { EXPECT_GT(p[3], p[c]); }
  }
  EXPECT_GT(model.queries(), 0u);
}

TEST(Prior, EstimatePuts75OnTop) {
  PlantedBlackBox model(small_spec(), 1, 2, 3);
  const auto p =
      make_prior(PriorKind::kEstimate, {}, model, some_windows(8));
  EXPECT_DOUBLE_EQ(p[3], 0.75);
  for (std::size_t c = 0; c < p.size(); ++c) {
    if (c != 3) { EXPECT_NEAR(p[c], 0.25 / 7.0, 1e-12); }
  }
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
}

TEST(Prior, PredictRequiresObservations) {
  PlantedBlackBox model(small_spec(), 1, 2, 3);
  EXPECT_THROW((void)make_prior(PriorKind::kPredict, {}, model, {}),
               std::invalid_argument);
}

TEST(LocationsOfInterest, FiltersByConfidence) {
  // hot = 0.9 on class 3; others share 0.1/7 ~ 0.014 > 1%? cold rows give
  // 0.05 on class 3 and ~0.135 elsewhere... use thresholds around the
  // planted confidences to verify filtering behavior.
  PlantedBlackBox model(small_spec(), 1, 2, 3, /*hot=*/0.9f,
                        /*cold=*/0.05f);
  const auto windows = some_windows(8);

  // Threshold above every off-class confidence: only class 3 survives.
  const auto strict = locations_of_interest(model, windows, 0.5);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0], 3);

  // Tiny threshold: everything survives.
  const auto loose = locations_of_interest(model, windows, 1e-6);
  EXPECT_EQ(loose.size(), 8u);
}

TEST(LocationsOfInterest, RequiresObservations) {
  PlantedBlackBox model(small_spec(), 1, 2, 3);
  EXPECT_THROW((void)locations_of_interest(model, {}, 0.01),
               std::invalid_argument);
}

}  // namespace
}  // namespace pelican::attack
