// A hand-constructed BlackBoxModel for attack unit tests: its confidence in
// a "secret" output class is high exactly when the candidate input's
// location block at a chosen step matches a planted secret location.
// Inversion attacks must recover the planted location — no training needed.
#pragma once

#include <cstdint>

#include "attack/blackbox.hpp"

namespace pelican::attack::testing {

class PlantedBlackBox final : public BlackBoxModel {
 public:
  /// The model "reveals" `secret_location` at `sensitive_step`: querying
  /// with that location yields confidence `hot` for `secret_output`,
  /// anything else yields `cold` (both rows re-normalized).
  PlantedBlackBox(mobility::EncodingSpec spec, std::size_t sensitive_step,
                  std::uint16_t secret_location, std::uint16_t secret_output,
                  float hot = 0.9f, float cold = 0.05f)
      : spec_(spec),
        step_(sensitive_step),
        secret_location_(secret_location),
        secret_output_(secret_output),
        hot_(hot),
        cold_(cold) {}

  [[nodiscard]] nn::Matrix query(const nn::Sequence& input) override {
    ++queries_;
    const std::size_t batch = input[0].rows();
    const std::size_t classes = num_classes();
    nn::Matrix probs(batch, classes);
    for (std::size_t r = 0; r < batch; ++r) {
      const bool match =
          input[step_](r, spec_.location_offset() + secret_location_) > 0.5f;
      const float conf = match ? hot_ : cold_;
      const float rest =
          (1.0f - conf) / static_cast<float>(classes - 1);
      for (std::size_t c = 0; c < classes; ++c) probs(r, c) = rest;
      probs(r, secret_output_) = conf;
    }
    return probs;
  }

  [[nodiscard]] std::size_t num_classes() const override {
    return spec_.num_locations;
  }
  [[nodiscard]] const mobility::EncodingSpec& spec() const override {
    return spec_;
  }
  [[nodiscard]] std::size_t queries() const noexcept { return queries_; }

 private:
  mobility::EncodingSpec spec_;
  std::size_t step_;
  std::uint16_t secret_location_;
  std::uint16_t secret_output_;
  float hot_;
  float cold_;
  std::size_t queries_ = 0;
};

}  // namespace pelican::attack::testing
