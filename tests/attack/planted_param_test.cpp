// Property sweep of the inversion driver: for every adversary and every
// planted secret location, the attack against the planted black box must
// rank the secret first. This is the attack's completeness property,
// independent of any trained model.
#include <gtest/gtest.h>

#include <tuple>

#include "attack/inversion.hpp"
#include "fake_blackbox.hpp"

namespace pelican::attack {
namespace {

using testing::PlantedBlackBox;
using Param = std::tuple<Adversary, std::uint16_t /*secret*/>;

class PlantedRecovery : public ::testing::TestWithParam<Param> {};

TEST_P(PlantedRecovery, SecretLocationRanksFirst) {
  const auto [adversary, secret] = GetParam();
  const mobility::EncodingSpec spec{mobility::SpatialLevel::kBuilding, 9};
  const std::size_t sensitive_step = target_step(adversary);
  const std::uint16_t observed_output = 1;
  PlantedBlackBox model(spec, sensitive_step, secret, observed_output);

  std::vector<mobility::Window> targets(8);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i].steps[0] = {10, 6, 1, secret};
    targets[i].steps[1] = {12, static_cast<std::uint8_t>(i % 24), 1, secret};
    targets[i].next_location = observed_output;
  }
  const std::vector<double> uniform(9, 1.0 / 9.0);

  InversionConfig config;
  config.adversary = adversary;
  config.method = AttackMethod::kTimeBased;
  config.loi_threshold = 1e-9;  // keep the full guess space
  config.ks = {1, 3};
  const auto result = run_inversion(model, targets, targets, uniform, config);

  EXPECT_DOUBLE_EQ(result.at_k(1), 1.0)
      << to_string(adversary) << " failed to recover location " << secret;
}

INSTANTIATE_TEST_SUITE_P(
    AdversariesAndSecrets, PlantedRecovery,
    ::testing::Combine(::testing::Values(Adversary::kA1, Adversary::kA2,
                                         Adversary::kA3),
                       ::testing::Values(std::uint16_t{0}, std::uint16_t{4},
                                         std::uint16_t{8})),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "loc" +
             std::to_string(std::get<1>(info.param));
    });

/// The enumeration completeness property on randomized bin-aligned windows:
/// the true unknown step always appears in the candidate set for A1/A2.
class EnumerationCompleteness
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnumerationCompleteness, TrueStepAlwaysEnumerated) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    // Bin-aligned contiguous pair: entry on 30-min grid, duration on the
    // 10-min grid below the cap.
    const auto e0 = static_cast<std::uint8_t>(rng.below(40));
    const auto d0 = static_cast<std::uint8_t>(rng.below(24));
    const auto loc0 = static_cast<std::uint16_t>(rng.below(9));
    const auto loc1 = static_cast<std::uint16_t>(rng.below(9));
    const auto d1 = static_cast<std::uint8_t>(rng.below(24));

    mobility::Window w;
    w.steps[0] = {e0, d0, 2, loc0};
    w.steps[1] = {derive_next_entry_bin(e0, d0), d1,
                  static_cast<std::uint8_t>(crosses_midnight(e0, d0) ? 3 : 2),
                  loc1};
    w.next_location = 0;

    std::vector<std::uint16_t> guesses(9);
    for (std::uint16_t i = 0; i < 9; ++i) guesses[i] = i;

    const auto a1 = enumerate_candidates(AttackMethod::kTimeBased,
                                         Adversary::kA1, w, guesses, {});
    EXPECT_TRUE(std::any_of(a1.begin(), a1.end(), [&](const Candidate& c) {
      return c.steps[1] == w.steps[1];
    })) << "A1 trial " << trial;

    const auto a2 = enumerate_candidates(AttackMethod::kTimeBased,
                                         Adversary::kA2, w, guesses, {});
    EXPECT_TRUE(std::any_of(a2.begin(), a2.end(), [&](const Candidate& c) {
      return c.steps[0].location == w.steps[0].location &&
             c.steps[0].duration_bin == w.steps[0].duration_bin &&
             c.steps[0].entry_bin == w.steps[0].entry_bin;
    })) << "A2 trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumerationCompleteness,
                         ::testing::Values(3ULL, 17ULL, 99ULL));

}  // namespace
}  // namespace pelican::attack
