#include "mobility/dataset.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mobility/simulator.hpp"

namespace pelican::mobility {
namespace {

Session make_session(std::int64_t start, std::int32_t duration,
                     std::uint16_t building, std::uint16_t ap = 0) {
  Session s;
  s.start_minute = start;
  s.duration_minutes = duration;
  s.building = building;
  s.ap = ap;
  return s;
}

TEST(SessionDiscretization, EntryBins) {
  EXPECT_EQ(make_session(0, 10, 0).entry_bin(), 0);
  EXPECT_EQ(make_session(29, 10, 0).entry_bin(), 0);
  EXPECT_EQ(make_session(30, 10, 0).entry_bin(), 1);
  EXPECT_EQ(make_session(23 * 60 + 59, 10, 0).entry_bin(), 47);
  // Second day wraps back to bin 0.
  EXPECT_EQ(make_session(kMinutesPerDay + 5, 10, 0).entry_bin(), 0);
}

TEST(SessionDiscretization, DurationBinsAndCap) {
  EXPECT_EQ(make_session(0, 0, 0).duration_bin(), 0);
  EXPECT_EQ(make_session(0, 9, 0).duration_bin(), 0);
  EXPECT_EQ(make_session(0, 10, 0).duration_bin(), 1);
  EXPECT_EQ(make_session(0, 239, 0).duration_bin(), 23);
  // The 4-hour cap: anything longer lands in the last bin.
  EXPECT_EQ(make_session(0, 240, 0).duration_bin(), 23);
  EXPECT_EQ(make_session(0, 600, 0).duration_bin(), 23);
}

TEST(SessionDiscretization, DayOfWeek) {
  EXPECT_EQ(make_session(0, 10, 0).day_of_week(), 0);
  EXPECT_EQ(make_session(6 * kMinutesPerDay, 10, 0).day_of_week(), 6);
  EXPECT_EQ(make_session(7 * kMinutesPerDay, 10, 0).day_of_week(), 0);
}

TEST(EncodingSpec, BlockLayout) {
  EncodingSpec spec{SpatialLevel::kBuilding, 15};
  EXPECT_EQ(spec.entry_offset(), 0u);
  EXPECT_EQ(spec.duration_offset(), 48u);
  EXPECT_EQ(spec.location_offset(), 72u);
  EXPECT_EQ(spec.day_offset(), 87u);
  EXPECT_EQ(spec.input_dim(), 94u);
}

TEST(MakeWindows, SlidesOverTrajectory) {
  Trajectory t;
  t.sessions = {make_session(0, 60, 1), make_session(60, 30, 2),
                make_session(90, 30, 3), make_session(120, 60, 4)};
  const auto windows = make_windows(t, SpatialLevel::kBuilding);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].steps[0].location, 1);
  EXPECT_EQ(windows[0].steps[1].location, 2);
  EXPECT_EQ(windows[0].next_location, 3);
  EXPECT_EQ(windows[0].start_minute, 0);
  EXPECT_EQ(windows[1].steps[0].location, 2);
  EXPECT_EQ(windows[1].next_location, 4);
}

TEST(MakeWindows, ApLevelUsesApIds) {
  Trajectory t;
  t.sessions = {make_session(0, 60, 1, 10), make_session(60, 30, 2, 20),
                make_session(90, 30, 3, 30)};
  const auto windows = make_windows(t, SpatialLevel::kAp);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].steps[0].location, 10);
  EXPECT_EQ(windows[0].next_location, 30);
}

TEST(MakeWindows, TooShortTrajectoryGivesNothing) {
  Trajectory t;
  t.sessions = {make_session(0, 60, 1), make_session(60, 30, 2)};
  EXPECT_TRUE(make_windows(t, SpatialLevel::kBuilding).empty());
}

TEST(SplitWindows, TimeOrderedSplit) {
  std::vector<Window> windows(10);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    windows[i].start_minute = static_cast<std::int64_t>(i) * 100;
  }
  const auto split = split_windows(windows, 0.8);
  ASSERT_EQ(split.train.size(), 8u);
  ASSERT_EQ(split.test.size(), 2u);
  EXPECT_LT(split.train.back().start_minute,
            split.test.front().start_minute);
  EXPECT_THROW((void)split_windows(windows, 0.0), std::invalid_argument);
  EXPECT_THROW((void)split_windows(windows, 1.0), std::invalid_argument);
}

TEST(WindowsInFirstWeeks, FiltersByStartTime) {
  std::vector<Window> windows(4);
  windows[0].start_minute = 0;
  windows[1].start_minute = kMinutesPerWeek - 1;
  windows[2].start_minute = kMinutesPerWeek;
  windows[3].start_minute = 3 * kMinutesPerWeek;
  EXPECT_EQ(windows_in_first_weeks(windows, 1).size(), 2u);
  EXPECT_EQ(windows_in_first_weeks(windows, 2).size(), 3u);
  EXPECT_EQ(windows_in_first_weeks(windows, 4).size(), 4u);
  EXPECT_THROW((void)windows_in_first_weeks(windows, 0),
               std::invalid_argument);
}

TEST(LocationMarginals, CountsHistoricalSteps) {
  std::vector<Window> windows(2);
  windows[0].steps[0].location = 1;
  windows[0].steps[1].location = 2;
  windows[1].steps[0].location = 1;
  windows[1].steps[1].location = 1;
  const auto p = location_marginals(windows, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
  EXPECT_DOUBLE_EQ(p[2], 0.25);
  EXPECT_DOUBLE_EQ(std::accumulate(p.begin(), p.end(), 0.0), 1.0);
}

TEST(LocationMarginals, EmptyAndOutOfRange) {
  EXPECT_EQ(location_marginals({}, 3), std::vector<double>(3, 0.0));
  std::vector<Window> windows(1);
  windows[0].steps[0].location = 9;
  EXPECT_THROW((void)location_marginals(windows, 3), std::out_of_range);
}

TEST(EncodeWindow, ExactlyFourOnesPerStep) {
  EncodingSpec spec{SpatialLevel::kBuilding, 10};
  Window w;
  w.steps[0] = {5, 3, 2, 7};
  w.steps[1] = {6, 0, 2, 1};
  w.next_location = 4;

  nn::Sequence x(kWindowSteps, nn::Matrix(1, spec.input_dim(), 0.0f));
  encode_window(w, spec, x, 0);

  for (std::size_t t = 0; t < kWindowSteps; ++t) {
    float total = 0.0f;
    for (const float v : x[t].row(0)) {
      EXPECT_TRUE(v == 0.0f || v == 1.0f);
      total += v;
    }
    EXPECT_FLOAT_EQ(total, 4.0f) << "step " << t;
  }
  EXPECT_FLOAT_EQ(x[0](0, spec.entry_offset() + 5), 1.0f);
  EXPECT_FLOAT_EQ(x[0](0, spec.duration_offset() + 3), 1.0f);
  EXPECT_FLOAT_EQ(x[0](0, spec.location_offset() + 7), 1.0f);
  EXPECT_FLOAT_EQ(x[0](0, spec.day_offset() + 2), 1.0f);
  EXPECT_FLOAT_EQ(x[1](0, spec.location_offset() + 1), 1.0f);
}

TEST(EncodeWindow, RejectsOutOfDomainLocation) {
  EncodingSpec spec{SpatialLevel::kBuilding, 4};
  Window w;
  w.steps[0].location = 4;  // out of domain
  nn::Sequence x(kWindowSteps, nn::Matrix(1, spec.input_dim(), 0.0f));
  EXPECT_THROW(encode_window(w, spec, x, 0), std::out_of_range);
}

TEST(WindowDataset, MaterializesBatches) {
  EncodingSpec spec{SpatialLevel::kBuilding, 8};
  std::vector<Window> windows(5);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    windows[i].steps[0].location = static_cast<std::uint16_t>(i % 8);
    windows[i].steps[1].location = static_cast<std::uint16_t>((i + 1) % 8);
    windows[i].next_location = static_cast<std::uint16_t>((i + 2) % 8);
  }
  const WindowDataset data(windows, spec);
  EXPECT_EQ(data.size(), 5u);
  EXPECT_EQ(data.seq_len(), kWindowSteps);
  EXPECT_EQ(data.input_dim(), spec.input_dim());
  EXPECT_EQ(data.num_classes(), 8u);

  nn::Sequence x;
  std::vector<std::int32_t> y;
  const std::vector<std::uint32_t> idx = {4, 0};
  data.materialize(idx, x, y);
  ASSERT_EQ(x.size(), kWindowSteps);
  EXPECT_EQ(x[0].rows(), 2u);
  EXPECT_EQ(y[0], 6);  // window 4: (4+2)%8
  EXPECT_EQ(y[1], 2);  // window 0
  EXPECT_FLOAT_EQ(x[0](0, spec.location_offset() + 4), 1.0f);
  EXPECT_FLOAT_EQ(x[0](1, spec.location_offset() + 0), 1.0f);
}

TEST(WindowDataset, RejectsLabelOutsideDomain) {
  EncodingSpec spec{SpatialLevel::kBuilding, 4};
  std::vector<Window> windows(1);
  windows[0].next_location = 4;
  EXPECT_THROW(WindowDataset(windows, spec), std::out_of_range);
}

TEST(WindowDataset, DomainEqualizationUsesFullCampus) {
  // A user who only ever visits 3 buildings still gets encoded over the
  // whole campus domain (Section III-A3).
  CampusConfig config;
  config.buildings = 25;
  config.mean_aps_per_building = 3;
  const Campus campus = Campus::generate(config, 3);
  const auto spec =
      EncodingSpec::for_campus(campus, SpatialLevel::kBuilding);
  EXPECT_EQ(spec.num_locations, 25u);

  std::vector<Window> windows(1);
  windows[0].steps[0].location = 1;
  windows[0].steps[1].location = 2;
  windows[0].next_location = 1;
  const WindowDataset data(windows, spec);
  EXPECT_EQ(data.num_classes(), 25u);
  EXPECT_EQ(data.input_dim(), 48u + 24u + 25u + 7u);
}

}  // namespace
}  // namespace pelican::mobility
