#include "mobility/dataset.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "mobility/simulator.hpp"

namespace pelican::mobility {
namespace {

Session make_session(std::int64_t start, std::int32_t duration,
                     std::uint16_t building, std::uint16_t ap = 0) {
  Session s;
  s.start_minute = start;
  s.duration_minutes = duration;
  s.building = building;
  s.ap = ap;
  return s;
}

TEST(SessionDiscretization, EntryBins) {
  EXPECT_EQ(make_session(0, 10, 0).entry_bin(), 0);
  EXPECT_EQ(make_session(29, 10, 0).entry_bin(), 0);
  EXPECT_EQ(make_session(30, 10, 0).entry_bin(), 1);
  EXPECT_EQ(make_session(23 * 60 + 59, 10, 0).entry_bin(), 47);
  // Second day wraps back to bin 0.
  EXPECT_EQ(make_session(kMinutesPerDay + 5, 10, 0).entry_bin(), 0);
}

TEST(SessionDiscretization, DurationBinsAndCap) {
  EXPECT_EQ(make_session(0, 0, 0).duration_bin(), 0);
  EXPECT_EQ(make_session(0, 9, 0).duration_bin(), 0);
  EXPECT_EQ(make_session(0, 10, 0).duration_bin(), 1);
  EXPECT_EQ(make_session(0, 239, 0).duration_bin(), 23);
  // The 4-hour cap: anything longer lands in the last bin.
  EXPECT_EQ(make_session(0, 240, 0).duration_bin(), 23);
  EXPECT_EQ(make_session(0, 600, 0).duration_bin(), 23);
}

TEST(SessionDiscretization, DayOfWeek) {
  EXPECT_EQ(make_session(0, 10, 0).day_of_week(), 0);
  EXPECT_EQ(make_session(6 * kMinutesPerDay, 10, 0).day_of_week(), 6);
  EXPECT_EQ(make_session(7 * kMinutesPerDay, 10, 0).day_of_week(), 0);
}

TEST(EncodingSpec, BlockLayout) {
  EncodingSpec spec{SpatialLevel::kBuilding, 15};
  EXPECT_EQ(spec.entry_offset(), 0u);
  EXPECT_EQ(spec.duration_offset(), 48u);
  EXPECT_EQ(spec.location_offset(), 72u);
  EXPECT_EQ(spec.day_offset(), 87u);
  EXPECT_EQ(spec.input_dim(), 94u);
}

TEST(MakeWindows, SlidesOverTrajectory) {
  Trajectory t;
  t.sessions = {make_session(0, 60, 1), make_session(60, 30, 2),
                make_session(90, 30, 3), make_session(120, 60, 4)};
  const auto windows = make_windows(t, SpatialLevel::kBuilding);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].steps[0].location, 1);
  EXPECT_EQ(windows[0].steps[1].location, 2);
  EXPECT_EQ(windows[0].next_location, 3);
  EXPECT_EQ(windows[0].start_minute, 0);
  EXPECT_EQ(windows[1].steps[0].location, 2);
  EXPECT_EQ(windows[1].next_location, 4);
}

TEST(MakeWindows, ApLevelUsesApIds) {
  Trajectory t;
  t.sessions = {make_session(0, 60, 1, 10), make_session(60, 30, 2, 20),
                make_session(90, 30, 3, 30)};
  const auto windows = make_windows(t, SpatialLevel::kAp);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].steps[0].location, 10);
  EXPECT_EQ(windows[0].next_location, 30);
}

TEST(MakeWindows, TooShortTrajectoryGivesNothing) {
  Trajectory t;
  t.sessions = {make_session(0, 60, 1), make_session(60, 30, 2)};
  EXPECT_TRUE(make_windows(t, SpatialLevel::kBuilding).empty());
}

TEST(SplitWindows, TimeOrderedSplit) {
  std::vector<Window> windows(10);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    windows[i].start_minute = static_cast<std::int64_t>(i) * 100;
  }
  const auto split = split_windows(windows, 0.8);
  ASSERT_EQ(split.train.size(), 8u);
  ASSERT_EQ(split.test.size(), 2u);
  EXPECT_LT(split.train.back().start_minute,
            split.test.front().start_minute);
  EXPECT_THROW((void)split_windows(windows, 0.0), std::invalid_argument);
  EXPECT_THROW((void)split_windows(windows, 1.0), std::invalid_argument);
}

TEST(WindowsInFirstWeeks, FiltersByStartTime) {
  std::vector<Window> windows(4);
  windows[0].start_minute = 0;
  windows[1].start_minute = kMinutesPerWeek - 1;
  windows[2].start_minute = kMinutesPerWeek;
  windows[3].start_minute = 3 * kMinutesPerWeek;
  EXPECT_EQ(windows_in_first_weeks(windows, 1).size(), 2u);
  EXPECT_EQ(windows_in_first_weeks(windows, 2).size(), 3u);
  EXPECT_EQ(windows_in_first_weeks(windows, 4).size(), 4u);
  EXPECT_THROW((void)windows_in_first_weeks(windows, 0),
               std::invalid_argument);
}

TEST(LocationMarginals, CountsHistoricalSteps) {
  std::vector<Window> windows(2);
  windows[0].steps[0].location = 1;
  windows[0].steps[1].location = 2;
  windows[1].steps[0].location = 1;
  windows[1].steps[1].location = 1;
  const auto p = location_marginals(windows, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
  EXPECT_DOUBLE_EQ(p[2], 0.25);
  EXPECT_DOUBLE_EQ(std::accumulate(p.begin(), p.end(), 0.0), 1.0);
}

TEST(LocationMarginals, EmptyAndOutOfRange) {
  EXPECT_EQ(location_marginals({}, 3), std::vector<double>(3, 0.0));
  std::vector<Window> windows(1);
  windows[0].steps[0].location = 9;
  EXPECT_THROW((void)location_marginals(windows, 3), std::out_of_range);
}

}  // namespace
}  // namespace pelican::mobility
