// Property sweep over simulation seeds and horizons: every generated trace
// must satisfy the structural invariants the attacks and datasets rely on,
// regardless of persona randomness.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "mobility/dataset.hpp"
#include "mobility/simulator.hpp"
#include "mobility/trace_stats.hpp"

namespace pelican::mobility {
namespace {

using Param = std::tuple<std::uint64_t /*seed*/, int /*weeks*/>;

class TraceInvariants : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    CampusConfig config;
    config.buildings = 15;
    config.mean_aps_per_building = 4;
    campus_ = Campus::generate(config, 77);
    const auto [seed, weeks] = GetParam();
    Rng rng(seed);
    persona_ = generate_persona(campus_, static_cast<std::uint32_t>(seed),
                                PersonaConfig{}, rng);
    SimulationConfig sim;
    sim.weeks = weeks;
    trajectory_ = simulate(campus_, persona_, sim, Rng(seed * 31 + 7));
    weeks_ = weeks;
  }

  Campus campus_;
  Persona persona_;
  Trajectory trajectory_;
  int weeks_ = 0;
};

TEST_P(TraceInvariants, SessionsContiguousAndCoverSpan) {
  ASSERT_FALSE(trajectory_.sessions.empty());
  EXPECT_TRUE(is_contiguous(trajectory_));
  EXPECT_EQ(trajectory_.sessions.front().start_minute, 0);
  EXPECT_EQ(trajectory_.sessions.back().end_minute(),
            static_cast<std::int64_t>(weeks_) * kMinutesPerWeek);
}

TEST_P(TraceInvariants, AllLocationsWithinCampusDomain) {
  for (const Session& s : trajectory_.sessions) {
    ASSERT_LT(s.building, campus_.num_buildings());
    ASSERT_LT(s.ap, campus_.num_aps());
    ASSERT_EQ(campus_.building_of_ap(s.ap), s.building);
  }
}

TEST_P(TraceInvariants, DiscretizedFeaturesWithinBins) {
  for (const Session& s : trajectory_.sessions) {
    ASSERT_GE(s.entry_bin(), 0);
    ASSERT_LT(s.entry_bin(), kEntryBins);
    ASSERT_GE(s.duration_bin(), 0);
    ASSERT_LT(s.duration_bin(), kDurationBins);
    ASSERT_GE(s.day_of_week(), 0);
    ASSERT_LT(s.day_of_week(), kDaysPerWeek);
    ASSERT_GT(s.duration_minutes, 0);
  }
}

TEST_P(TraceInvariants, WindowsAreWellFormedAtBothLevels) {
  for (const SpatialLevel level :
       {SpatialLevel::kBuilding, SpatialLevel::kAp}) {
    const auto windows = make_windows(trajectory_, level);
    ASSERT_EQ(windows.size(), trajectory_.sessions.size() - 2);
    const auto spec = EncodingSpec::for_campus(campus_, level);
    for (const Window& w : windows) {
      ASSERT_LT(w.next_location, spec.num_locations);
      ASSERT_LT(w.steps[0].location, spec.num_locations);
      ASSERT_LE(w.start_minute,
                static_cast<std::int64_t>(weeks_) * kMinutesPerWeek);
    }
    // Marginals over windows form a probability distribution.
    const auto p = location_marginals(windows, spec.num_locations);
    double total = 0.0;
    for (const double v : p) {
      ASSERT_GE(v, 0.0);
      total += v;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_P(TraceInvariants, DormIsTheTopBuilding) {
  const TraceStats stats = compute_stats(trajectory_);
  EXPECT_GT(stats.top_building_time_share, 0.3);
  EXPECT_GE(stats.mean_sessions_per_day, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWeeks, TraceInvariants,
    ::testing::Combine(::testing::Values(1ULL, 7ULL, 42ULL, 1234ULL),
                       ::testing::Values(1, 3, 6)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "w" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace pelican::mobility
