#include "mobility/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mobility/dataset.hpp"
#include "mobility/simulator.hpp"

namespace pelican::mobility {
namespace {

Trajectory small_trajectory(std::uint32_t user) {
  Trajectory t;
  t.user_id = user;
  t.sessions = {
      {0, 60, 1, 10},
      {60, 30, 2, 20},
      {90, 45, 1, 11},
  };
  return t;
}

TEST(TraceIo, SessionsRoundTripThroughStream) {
  const std::vector<Trajectory> original = {small_trajectory(3),
                                            small_trajectory(7)};
  std::stringstream buffer;
  write_sessions_csv(buffer, original);
  const auto recovered = read_sessions_csv(buffer);
  ASSERT_EQ(recovered.size(), 2u);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_EQ(recovered[u].user_id, original[u].user_id);
    ASSERT_EQ(recovered[u].sessions.size(), original[u].sessions.size());
    for (std::size_t i = 0; i < recovered[u].sessions.size(); ++i) {
      EXPECT_EQ(recovered[u].sessions[i].start_minute,
                original[u].sessions[i].start_minute);
      EXPECT_EQ(recovered[u].sessions[i].duration_minutes,
                original[u].sessions[i].duration_minutes);
      EXPECT_EQ(recovered[u].sessions[i].building,
                original[u].sessions[i].building);
      EXPECT_EQ(recovered[u].sessions[i].ap, original[u].sessions[i].ap);
    }
  }
}

TEST(TraceIo, SessionsRoundTripThroughFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "pelican_trace_io_test.csv";
  const std::vector<Trajectory> original = {small_trajectory(1)};
  write_sessions_csv(path, original);
  const auto recovered = read_sessions_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].sessions.size(), 3u);
}

TEST(TraceIo, ReaderSortsOutOfOrderRows) {
  std::stringstream buffer;
  buffer << "user_id,start_minute,duration_minutes,building,ap\n"
         << "1,90,45,1,11\n"
         << "1,0,60,1,10\n"
         << "1,60,30,2,20\n";
  const auto recovered = read_sessions_csv(buffer);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].sessions[0].start_minute, 0);
  EXPECT_EQ(recovered[0].sessions[2].start_minute, 90);
}

TEST(TraceIo, RejectsBadHeaderAndRows) {
  std::stringstream bad_header("wrong,header\n");
  EXPECT_THROW((void)read_sessions_csv(bad_header), std::runtime_error);

  std::stringstream bad_row;
  bad_row << "user_id,start_minute,duration_minutes,building,ap\n"
          << "1,oops,30,2,20\n";
  EXPECT_THROW((void)read_sessions_csv(bad_row), std::runtime_error);

  std::stringstream short_row;
  short_row << "user_id,start_minute,duration_minutes,building,ap\n"
            << "1,2,3\n";
  EXPECT_THROW((void)read_sessions_csv(short_row), std::runtime_error);
}

TEST(TraceIo, EventsRoundTrip) {
  const std::vector<ApEvent> original = {
      {0, 1, 10}, {60, 1, 20}, {30, 2, 15}};
  std::stringstream buffer;
  write_events_csv(buffer, original);
  const auto recovered = read_events_csv(buffer);
  EXPECT_EQ(recovered, original);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_sessions_csv(std::filesystem::path(
                   "/nonexistent_zz/file.csv")),
               std::runtime_error);
}

TEST(TraceIo, SimulatedTraceSurvivesExportImportPipeline) {
  // Full external-tool pipeline: simulate -> export events CSV -> import ->
  // sessionize -> windows. The windows must be identical to windowing the
  // original trajectory directly.
  CampusConfig config;
  config.buildings = 10;
  config.mean_aps_per_building = 3;
  const Campus campus = Campus::generate(config, 4);
  Rng rng(5);
  const auto persona = generate_persona(campus, 2, PersonaConfig{}, rng);
  SimulationConfig sim;
  sim.weeks = 1;
  const Trajectory original = simulate(campus, persona, sim, Rng(6));

  std::stringstream buffer;
  write_events_csv(buffer, to_events(original));
  const auto events = read_events_csv(buffer);

  SessionizeConfig sessionize_config;
  sessionize_config.merge_below_minutes = 0;
  sessionize_config.min_session_minutes = 0;
  sessionize_config.absence_gap_minutes = 2 * kMinutesPerDay;
  const auto recovered = sessionize(events, campus, sessionize_config);
  ASSERT_EQ(recovered.size(), 1u);

  const auto original_windows =
      make_windows(original, SpatialLevel::kBuilding);
  auto recovered_windows =
      make_windows(recovered[0], SpatialLevel::kBuilding);
  ASSERT_EQ(recovered_windows.size(), original_windows.size());
  // The trailing session's duration is unknowable from events alone; all
  // earlier windows must match exactly.
  for (std::size_t i = 0; i + 1 < recovered_windows.size(); ++i) {
    EXPECT_EQ(recovered_windows[i], original_windows[i]) << "window " << i;
  }
}

}  // namespace
}  // namespace pelican::mobility
