#include "mobility/events.hpp"

#include <gtest/gtest.h>

#include "mobility/simulator.hpp"
#include "mobility/trace_stats.hpp"

namespace pelican::mobility {
namespace {

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CampusConfig config;
    config.buildings = 10;
    config.mean_aps_per_building = 3;
    campus_ = Campus::generate(config, 42);
  }

  std::uint16_t ap_of(std::uint16_t building, std::uint16_t index = 0) {
    return static_cast<std::uint16_t>(campus_.building(building).first_ap +
                                      index);
  }

  Campus campus_;
};

TEST_F(EventsTest, BuildsSessionsFromAssociations) {
  const std::vector<ApEvent> events = {
      {0, 7, ap_of(1)},
      {60, 7, ap_of(2)},
      {90, 7, ap_of(3)},
  };
  const auto trajectories = sessionize(events, campus_);
  ASSERT_EQ(trajectories.size(), 1u);
  const auto& sessions = trajectories[0].sessions;
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(trajectories[0].user_id, 7u);
  EXPECT_EQ(sessions[0].building, 1);
  EXPECT_EQ(sessions[0].duration_minutes, 60);
  EXPECT_EQ(sessions[1].duration_minutes, 30);
  EXPECT_TRUE(is_contiguous(trajectories[0]));
}

TEST_F(EventsTest, SortsUnorderedEventsPerDevice) {
  const std::vector<ApEvent> events = {
      {90, 1, ap_of(3)},
      {0, 1, ap_of(1)},
      {60, 1, ap_of(2)},
  };
  const auto trajectories = sessionize(events, campus_);
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_EQ(trajectories[0].sessions[0].building, 1);
  EXPECT_EQ(trajectories[0].sessions[2].building, 3);
}

TEST_F(EventsTest, SeparatesDevices) {
  const std::vector<ApEvent> events = {
      {0, 1, ap_of(1)},
      {0, 2, ap_of(2)},
      {50, 1, ap_of(3)},
      {50, 2, ap_of(4)},
  };
  const auto trajectories = sessionize(events, campus_);
  ASSERT_EQ(trajectories.size(), 2u);
  EXPECT_EQ(trajectories[0].user_id, 1u);
  EXPECT_EQ(trajectories[1].user_id, 2u);
  EXPECT_EQ(trajectories[0].sessions[0].building, 1);
  EXPECT_EQ(trajectories[1].sessions[0].building, 2);
}

TEST_F(EventsTest, MergesSameBuildingFlaps) {
  // Rapid roam between two APs of building 2: one logical stay.
  const std::vector<ApEvent> events = {
      {0, 5, ap_of(2, 0)},
      {60, 5, ap_of(2, 1)},  // flap within the building
      {65, 5, ap_of(2, 0)},
      {70, 5, ap_of(3, 0)},
  };
  SessionizeConfig config;
  config.merge_below_minutes = 10;
  config.min_session_minutes = 5;
  const auto trajectories = sessionize(events, campus_, config);
  ASSERT_EQ(trajectories.size(), 1u);
  const auto& sessions = trajectories[0].sessions;
  ASSERT_GE(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].building, 2);
  EXPECT_EQ(sessions[0].duration_minutes, 70);  // merged stay
  EXPECT_EQ(sessions[1].building, 3);
}

TEST_F(EventsTest, SplitsAtLongAbsence) {
  SessionizeConfig config;
  config.absence_gap_minutes = 120;
  const std::vector<ApEvent> events = {
      {0, 9, ap_of(1)},
      {1000, 9, ap_of(2)},  // device was gone for ~16 h
  };
  const auto trajectories = sessionize(events, campus_, config);
  ASSERT_EQ(trajectories.size(), 1u);
  const auto& sessions = trajectories[0].sessions;
  ASSERT_EQ(sessions.size(), 2u);
  // First session is capped at the absence bound, not stretched to 1000.
  EXPECT_EQ(sessions[0].duration_minutes, 120);
  EXPECT_EQ(sessions[1].start_minute, 1000);
}

TEST_F(EventsTest, DropsIsolatedBlips) {
  SessionizeConfig config;
  config.min_session_minutes = 10;
  config.merge_below_minutes = 0;  // no merging: the blip stands alone
  const std::vector<ApEvent> events = {
      {0, 3, ap_of(1)},
      {60, 3, ap_of(2)},   // 3-minute blip
      {63, 3, ap_of(1)},
  };
  const auto trajectories = sessionize(events, campus_, config);
  ASSERT_EQ(trajectories.size(), 1u);
  for (const Session& s : trajectories[0].sessions) {
    EXPECT_GE(s.duration_minutes, 10);
  }
}

TEST_F(EventsTest, RejectsBadInput) {
  const std::vector<ApEvent> bad_ap = {
      {0, 1, static_cast<std::uint16_t>(campus_.num_aps())}};
  EXPECT_THROW((void)sessionize(bad_ap, campus_), std::out_of_range);

  SessionizeConfig config;
  config.absence_gap_minutes = 0;
  const std::vector<ApEvent> ok = {{0, 1, ap_of(1)}};
  EXPECT_THROW((void)sessionize(ok, campus_, config), std::invalid_argument);
}

TEST_F(EventsTest, RoundTripsSimulatedTraces) {
  // sessionize(to_events(simulated)) must reproduce the building-level
  // structure of the original trace (same buildings in the same order,
  // durations preserved except the final open session).
  Rng rng(9);
  const auto persona = generate_persona(campus_, 5, PersonaConfig{}, rng);
  SimulationConfig sim;
  sim.weeks = 1;
  const Trajectory original = simulate(campus_, persona, sim, Rng(10));

  SessionizeConfig config;
  config.merge_below_minutes = 0;
  config.min_session_minutes = 0;
  // Overnight dorm stays exceed the default absence bound; disable the
  // split so the exact durations round-trip.
  config.absence_gap_minutes = 2 * kMinutesPerDay;
  const auto events = to_events(original);
  const auto recovered = sessionize(events, campus_, config);
  ASSERT_EQ(recovered.size(), 1u);
  const auto& sessions = recovered[0].sessions;
  ASSERT_EQ(sessions.size(), original.sessions.size());
  for (std::size_t i = 0; i + 1 < sessions.size(); ++i) {
    EXPECT_EQ(sessions[i].building, original.sessions[i].building);
    EXPECT_EQ(sessions[i].start_minute, original.sessions[i].start_minute);
    EXPECT_EQ(sessions[i].duration_minutes,
              original.sessions[i].duration_minutes);
  }
}

}  // namespace
}  // namespace pelican::mobility
