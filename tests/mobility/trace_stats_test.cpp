#include "mobility/trace_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pelican::mobility {
namespace {

Session make_session(std::int64_t start, std::int32_t duration,
                     std::uint16_t building, std::uint16_t ap) {
  Session s;
  s.start_minute = start;
  s.duration_minutes = duration;
  s.building = building;
  s.ap = ap;
  return s;
}

TEST(TraceStats, EmptyTrajectory) {
  const TraceStats stats = compute_stats(Trajectory{});
  EXPECT_EQ(stats.sessions, 0u);
  EXPECT_EQ(stats.distinct_buildings, 0u);
}

TEST(TraceStats, HandComputedValues) {
  Trajectory t;
  t.sessions = {
      make_session(0, 60, 0, 0),    // building 0, 60 min
      make_session(60, 60, 1, 5),   // building 1, 60 min
      make_session(120, 120, 0, 1),  // building 0 again, different AP
  };
  const TraceStats stats = compute_stats(t);
  EXPECT_EQ(stats.sessions, 3u);
  EXPECT_EQ(stats.distinct_buildings, 2u);
  EXPECT_EQ(stats.distinct_aps, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_duration_minutes, 80.0);
  // Time split: building 0 gets 180/240, building 1 gets 60/240.
  EXPECT_DOUBLE_EQ(stats.top_building_time_share, 0.75);
  const double expected_entropy =
      -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(stats.building_entropy_bits, expected_entropy, 1e-12);
}

TEST(TraceStats, SingleBuildingHasZeroEntropy) {
  Trajectory t;
  t.sessions = {make_session(0, 30, 4, 9), make_session(30, 30, 4, 9)};
  const TraceStats stats = compute_stats(t);
  EXPECT_DOUBLE_EQ(stats.building_entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(stats.top_building_time_share, 1.0);
}

TEST(DegreeOfMobility, CountsDistinctPerLevel) {
  Trajectory t;
  t.sessions = {make_session(0, 10, 0, 0), make_session(10, 10, 0, 1),
                make_session(20, 10, 1, 5)};
  EXPECT_EQ(degree_of_mobility(t, SpatialLevel::kBuilding), 2u);
  EXPECT_EQ(degree_of_mobility(t, SpatialLevel::kAp), 3u);
}

TEST(IsContiguous, DetectsGapsAndOverlaps) {
  Trajectory good;
  good.sessions = {make_session(0, 30, 0, 0), make_session(30, 15, 1, 1),
                   make_session(45, 60, 0, 0)};
  EXPECT_TRUE(is_contiguous(good));

  Trajectory gap;
  gap.sessions = {make_session(0, 30, 0, 0), make_session(40, 15, 1, 1)};
  EXPECT_FALSE(is_contiguous(gap));

  Trajectory overlap;
  overlap.sessions = {make_session(0, 30, 0, 0), make_session(20, 15, 1, 1)};
  EXPECT_FALSE(is_contiguous(overlap));
}

TEST(IsContiguous, TrivialCases) {
  EXPECT_TRUE(is_contiguous(Trajectory{}));
  Trajectory single;
  single.sessions = {make_session(5, 10, 0, 0)};
  EXPECT_TRUE(is_contiguous(single));
}

TEST(TraceStats, SessionsPerDayUsesSpan) {
  Trajectory t;
  // 4 sessions over exactly 2 days.
  t.sessions = {make_session(0, 720, 0, 0), make_session(720, 720, 1, 1),
                make_session(1440, 720, 0, 0),
                make_session(2160, 720, 1, 1)};
  const TraceStats stats = compute_stats(t);
  EXPECT_NEAR(stats.mean_sessions_per_day, 2.0, 1e-9);
}

}  // namespace
}  // namespace pelican::mobility
