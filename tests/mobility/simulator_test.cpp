#include "mobility/simulator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mobility/trace_stats.hpp"

namespace pelican::mobility {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CampusConfig config;
    config.buildings = 16;
    config.mean_aps_per_building = 4;
    campus_ = Campus::generate(config, 21);
    Rng rng(22);
    persona_ = generate_persona(campus_, 1, PersonaConfig{}, rng);
  }

  Trajectory simulate_weeks(int weeks, std::uint64_t seed = 33) {
    SimulationConfig config;
    config.weeks = weeks;
    return simulate(campus_, persona_, config, Rng(seed));
  }

  Campus campus_;
  Persona persona_;
};

TEST_F(SimulatorTest, SessionsAreContiguous) {
  const Trajectory t = simulate_weeks(3);
  ASSERT_FALSE(t.sessions.empty());
  EXPECT_TRUE(is_contiguous(t))
      << "WiFi sessions must be back-to-back (time-based attack premise)";
}

TEST_F(SimulatorTest, CoversTheFullSimulatedSpan) {
  const Trajectory t = simulate_weeks(2);
  EXPECT_EQ(t.sessions.front().start_minute, 0);
  EXPECT_EQ(t.sessions.back().end_minute(),
            static_cast<std::int64_t>(2) * kMinutesPerWeek);
}

TEST_F(SimulatorTest, DeterministicGivenSeed) {
  const Trajectory a = simulate_weeks(2, 7);
  const Trajectory b = simulate_weeks(2, 7);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_EQ(a.sessions[i].start_minute, b.sessions[i].start_minute);
    EXPECT_EQ(a.sessions[i].building, b.sessions[i].building);
    EXPECT_EQ(a.sessions[i].ap, b.sessions[i].ap);
  }
}

TEST_F(SimulatorTest, SeedsChangeTheTrace) {
  const Trajectory a = simulate_weeks(2, 7);
  const Trajectory b = simulate_weeks(2, 8);
  bool differs = a.sessions.size() != b.sessions.size();
  for (std::size_t i = 0; !differs && i < a.sessions.size(); ++i) {
    differs = a.sessions[i].building != b.sessions[i].building ||
              a.sessions[i].start_minute != b.sessions[i].start_minute;
  }
  EXPECT_TRUE(differs);
}

TEST_F(SimulatorTest, ApsBelongToTheirBuildings) {
  const Trajectory t = simulate_weeks(3);
  for (const Session& s : t.sessions) {
    EXPECT_EQ(campus_.building_of_ap(s.ap), s.building);
  }
}

TEST_F(SimulatorTest, PositiveDurations) {
  const Trajectory t = simulate_weeks(3);
  for (const Session& s : t.sessions) {
    EXPECT_GT(s.duration_minutes, 0);
    EXPECT_LE(s.duration_minutes, kMinutesPerDay);
  }
}

TEST_F(SimulatorTest, DormDominatesTime) {
  const Trajectory t = simulate_weeks(4);
  const TraceStats stats = compute_stats(t);
  // Students sleep at home: the dorm should be the top building by time
  // (paper cites users spending the majority of time at a single location).
  EXPECT_GT(stats.top_building_time_share, 0.4);
}

TEST_F(SimulatorTest, VisitsClassBuildingsOfSchedule) {
  const Trajectory t = simulate_weeks(4);
  std::set<std::uint16_t> visited;
  for (const Session& s : t.sessions) visited.insert(s.building);
  // With routine_strength >= 0.55 over 4 weeks, every scheduled room is
  // visited at least once with overwhelming probability.
  for (const auto& slot : persona_.schedule) {
    EXPECT_TRUE(visited.contains(slot.building))
        << "scheduled building " << slot.building << " never visited";
  }
}

TEST_F(SimulatorTest, PreferredApIsStablePerUserBuilding) {
  const std::uint16_t ap1 = preferred_ap(campus_, 42, 3);
  const std::uint16_t ap2 = preferred_ap(campus_, 42, 3);
  EXPECT_EQ(ap1, ap2);
  const Building& b = campus_.building(3);
  EXPECT_GE(ap1, b.first_ap);
  EXPECT_LT(ap1, b.first_ap + b.ap_count);
}

TEST_F(SimulatorTest, PreferredApDominatesVisits) {
  SimulationConfig config;
  config.weeks = 4;
  config.preferred_ap_affinity = 0.9;
  const Trajectory t = simulate(campus_, persona_, config, Rng(55));
  std::size_t dorm_sessions = 0, dorm_on_preferred = 0;
  const std::uint16_t expected =
      preferred_ap(campus_, persona_.user_id, persona_.dorm);
  for (const Session& s : t.sessions) {
    if (s.building != persona_.dorm) continue;
    ++dorm_sessions;
    dorm_on_preferred += (s.ap == expected);
  }
  ASSERT_GT(dorm_sessions, 10u);
  EXPECT_GT(static_cast<double>(dorm_on_preferred) /
                static_cast<double>(dorm_sessions),
            0.7);
}

TEST_F(SimulatorTest, MoreRoutineMeansFewerDistinctBuildings) {
  Persona homebody = persona_;
  homebody.outing_rate = 0.0;
  homebody.gym_rate = 0.0;
  homebody.study_rate = 0.0;
  Persona wanderer = persona_;
  wanderer.outing_rate = 0.6;
  wanderer.gym_rate = 0.5;
  wanderer.study_rate = 0.9;

  SimulationConfig config;
  config.weeks = 4;
  const auto deg_home = degree_of_mobility(
      simulate(campus_, homebody, config, Rng(66)), SpatialLevel::kBuilding);
  const auto deg_wander = degree_of_mobility(
      simulate(campus_, wanderer, config, Rng(66)), SpatialLevel::kBuilding);
  EXPECT_LT(deg_home, deg_wander);
}

TEST_F(SimulatorTest, DayOfWeekCyclesOverTrace) {
  const Trajectory t = simulate_weeks(2);
  EXPECT_EQ(t.sessions.front().day_of_week(), 0);  // trace starts Monday
  std::set<int> days;
  for (const Session& s : t.sessions) days.insert(s.day_of_week());
  EXPECT_EQ(days.size(), 7u);
}

}  // namespace
}  // namespace pelican::mobility
