#include "mobility/persona.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pelican::mobility {
namespace {

class PersonaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CampusConfig config;
    config.buildings = 20;
    config.mean_aps_per_building = 4;
    campus_ = Campus::generate(config, 5);
  }
  Campus campus_;
  PersonaConfig persona_config_;
};

TEST_F(PersonaTest, DeterministicGivenRng) {
  Rng a(3), b(3);
  const Persona pa = generate_persona(campus_, 1, persona_config_, a);
  const Persona pb = generate_persona(campus_, 1, persona_config_, b);
  EXPECT_EQ(pa.dorm, pb.dorm);
  EXPECT_EQ(pa.schedule.size(), pb.schedule.size());
  EXPECT_EQ(pa.library, pb.library);
  EXPECT_DOUBLE_EQ(pa.routine_strength, pb.routine_strength);
}

TEST_F(PersonaTest, BuildingsHaveCorrectKinds) {
  Rng rng(4);
  const Persona p = generate_persona(campus_, 2, persona_config_, rng);
  EXPECT_EQ(campus_.building(p.dorm).kind, BuildingKind::kDorm);
  EXPECT_EQ(campus_.building(p.library).kind, BuildingKind::kLibrary);
  EXPECT_EQ(campus_.building(p.gym).kind, BuildingKind::kGym);
  for (const auto hall : p.dining_halls) {
    EXPECT_EQ(campus_.building(hall).kind, BuildingKind::kDining);
  }
  for (const auto& slot : p.schedule) {
    EXPECT_EQ(campus_.building(slot.building).kind, BuildingKind::kAcademic);
  }
}

TEST_F(PersonaTest, ScheduleSortedAndCollisionFree) {
  for (std::uint32_t user = 0; user < 20; ++user) {
    Rng rng(100 + user);
    const Persona p = generate_persona(campus_, user, persona_config_, rng);
    for (std::size_t i = 1; i < p.schedule.size(); ++i) {
      const auto& prev = p.schedule[i - 1];
      const auto& cur = p.schedule[i];
      const bool ordered =
          prev.day < cur.day ||
          (prev.day == cur.day && prev.start_minute < cur.start_minute);
      EXPECT_TRUE(ordered) << "user " << user << " slot " << i;
    }
  }
}

TEST_F(PersonaTest, ScheduleWithinCourseBounds) {
  Rng rng(6);
  PersonaConfig config;
  config.min_courses = 2;
  config.max_courses = 4;
  const Persona p = generate_persona(campus_, 3, config, rng);
  // Each course meets 2-3 times; same-slot collisions may drop a few.
  EXPECT_GE(p.schedule.size(), 2u);
  EXPECT_LE(p.schedule.size(), 12u);
  for (const auto& slot : p.schedule) {
    EXPECT_LT(slot.day, 7);
    EXPECT_GE(slot.start_minute, 8 * 60);
    EXPECT_LE(slot.start_minute + slot.duration_minutes, 18 * 60);
  }
}

TEST_F(PersonaTest, RatesWithinConfiguredRanges) {
  for (std::uint32_t user = 0; user < 30; ++user) {
    Rng rng(200 + user);
    const Persona p = generate_persona(campus_, user, persona_config_, rng);
    EXPECT_GE(p.routine_strength, persona_config_.min_routine);
    EXPECT_LE(p.routine_strength, persona_config_.max_routine);
    EXPECT_GE(p.outing_rate, persona_config_.min_outing);
    EXPECT_LE(p.outing_rate, persona_config_.max_outing);
  }
}

TEST_F(PersonaTest, HomeDomainContainsAllAnchors) {
  Rng rng(7);
  const Persona p = generate_persona(campus_, 4, persona_config_, rng);
  const auto domain = p.home_domain();
  const std::set<std::uint16_t> domain_set(domain.begin(), domain.end());
  EXPECT_TRUE(domain_set.contains(p.dorm));
  EXPECT_TRUE(domain_set.contains(p.library));
  EXPECT_TRUE(domain_set.contains(p.gym));
  for (const auto& slot : p.schedule) {
    EXPECT_TRUE(domain_set.contains(slot.building));
  }
  // The user's domain is a strict subset of campus — the reason the paper
  // needs domain equalization before transfer learning.
  EXPECT_LT(domain.size(), campus_.num_buildings());
}

TEST_F(PersonaTest, DistinctUsersGetDistinctBehavior) {
  Rng rng(8);
  const Persona a = generate_persona(campus_, 10, persona_config_, rng);
  const Persona b = generate_persona(campus_, 11, persona_config_, rng);
  const bool differs = a.dorm != b.dorm ||
                       a.schedule.size() != b.schedule.size() ||
                       a.routine_strength != b.routine_strength;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace pelican::mobility
