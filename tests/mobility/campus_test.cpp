#include "mobility/campus.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pelican::mobility {
namespace {

CampusConfig default_config() {
  CampusConfig config;
  config.buildings = 30;
  config.mean_aps_per_building = 8;
  return config;
}

TEST(Campus, GenerationIsDeterministic) {
  const Campus a = Campus::generate(default_config(), 42);
  const Campus b = Campus::generate(default_config(), 42);
  ASSERT_EQ(a.num_buildings(), b.num_buildings());
  ASSERT_EQ(a.num_aps(), b.num_aps());
  for (std::size_t i = 0; i < a.num_buildings(); ++i) {
    EXPECT_EQ(a.building(i).kind, b.building(i).kind);
    EXPECT_EQ(a.building(i).first_ap, b.building(i).first_ap);
    EXPECT_EQ(a.building(i).ap_count, b.building(i).ap_count);
  }
}

TEST(Campus, DifferentSeedsDiffer) {
  const Campus a = Campus::generate(default_config(), 1);
  const Campus b = Campus::generate(default_config(), 2);
  bool any_difference = a.num_aps() != b.num_aps();
  for (std::size_t i = 0; !any_difference && i < a.num_buildings(); ++i) {
    any_difference = a.building(i).kind != b.building(i).kind;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Campus, EveryEssentialKindPresent) {
  const Campus campus = Campus::generate(default_config(), 7);
  EXPECT_FALSE(campus.of_kind(BuildingKind::kDorm).empty());
  EXPECT_FALSE(campus.of_kind(BuildingKind::kAcademic).empty());
  EXPECT_FALSE(campus.of_kind(BuildingKind::kDining).empty());
  EXPECT_FALSE(campus.of_kind(BuildingKind::kLibrary).empty());
  EXPECT_FALSE(campus.of_kind(BuildingKind::kGym).empty());
}

TEST(Campus, EssentialKindsEvenWhenTiny) {
  CampusConfig config;
  config.buildings = 6;
  config.mean_aps_per_building = 2;
  const Campus campus = Campus::generate(config, 3);
  EXPECT_FALSE(campus.of_kind(BuildingKind::kDorm).empty());
  EXPECT_FALSE(campus.of_kind(BuildingKind::kGym).empty());
}

TEST(Campus, ApBlocksAreContiguousAndDisjoint) {
  const Campus campus = Campus::generate(default_config(), 9);
  std::uint16_t expected_first = 0;
  for (std::size_t i = 0; i < campus.num_buildings(); ++i) {
    const Building& b = campus.building(i);
    EXPECT_EQ(b.first_ap, expected_first);
    EXPECT_GE(b.ap_count, 1);
    expected_first = static_cast<std::uint16_t>(expected_first + b.ap_count);
  }
  EXPECT_EQ(campus.num_aps(), expected_first);
}

TEST(Campus, BuildingOfApRoundTrips) {
  const Campus campus = Campus::generate(default_config(), 11);
  for (std::size_t i = 0; i < campus.num_buildings(); ++i) {
    const Building& b = campus.building(i);
    for (std::uint16_t a = 0; a < b.ap_count; ++a) {
      EXPECT_EQ(campus.building_of_ap(
                    static_cast<std::uint16_t>(b.first_ap + a)),
                i);
    }
  }
  EXPECT_THROW((void)campus.building_of_ap(
                   static_cast<std::uint16_t>(campus.num_aps())),
               std::out_of_range);
}

TEST(Campus, KindPartitionCoversAllBuildings) {
  const Campus campus = Campus::generate(default_config(), 13);
  std::set<std::uint16_t> seen;
  for (const BuildingKind kind :
       {BuildingKind::kDorm, BuildingKind::kAcademic, BuildingKind::kDining,
        BuildingKind::kLibrary, BuildingKind::kGym, BuildingKind::kOther}) {
    for (const std::uint16_t id : campus.of_kind(kind)) {
      EXPECT_EQ(campus.building(id).kind, kind);
      EXPECT_TRUE(seen.insert(id).second) << "building listed twice";
    }
  }
  EXPECT_EQ(seen.size(), campus.num_buildings());
}

TEST(Campus, NumLocationsPerSpatialLevel) {
  const Campus campus = Campus::generate(default_config(), 15);
  EXPECT_EQ(campus.num_locations(SpatialLevel::kBuilding),
            campus.num_buildings());
  EXPECT_EQ(campus.num_locations(SpatialLevel::kAp), campus.num_aps());
  EXPECT_GT(campus.num_aps(), campus.num_buildings());
}

TEST(Campus, RejectsBadConfigs) {
  CampusConfig zero;
  zero.buildings = 0;
  EXPECT_THROW((void)Campus::generate(zero, 1), std::invalid_argument);

  CampusConfig no_aps = default_config();
  no_aps.mean_aps_per_building = 0;
  EXPECT_THROW((void)Campus::generate(no_aps, 1), std::invalid_argument);

  CampusConfig too_small;
  too_small.buildings = 3;  // cannot host one of each essential kind
  EXPECT_THROW((void)Campus::generate(too_small, 1), std::invalid_argument);

  CampusConfig bad_fractions = default_config();
  bad_fractions.dorm_fraction = 0.9;
  bad_fractions.academic_fraction = 0.9;
  EXPECT_THROW((void)Campus::generate(bad_fractions, 1),
               std::invalid_argument);
}

TEST(Campus, KindNamesAreStable) {
  EXPECT_STREQ(to_string(BuildingKind::kDorm), "dorm");
  EXPECT_STREQ(to_string(BuildingKind::kOther), "other");
}

}  // namespace
}  // namespace pelican::mobility
