#include "nn/model.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "grad_check.hpp"

namespace pelican::nn {
namespace {

Sequence random_sequence(std::size_t steps, std::size_t batch,
                         std::size_t dim, Rng& rng) {
  Sequence seq(steps);
  for (auto& x : seq) x = Matrix::randn(batch, dim, 1.0f, rng);
  return seq;
}

TEST(SequenceClassifier, ForwardShapeAndDims) {
  Rng rng(1);
  auto model = make_two_layer_lstm(6, 4, 9, 0.1, rng);
  EXPECT_EQ(model.input_dim(), 6u);
  EXPECT_EQ(model.num_classes(), 9u);
  EXPECT_EQ(model.layer_count(), 3u);  // lstm, dropout, lstm

  const Sequence input = random_sequence(2, 3, 6, rng);
  const Matrix logits = model.forward(input);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 9u);
}

TEST(SequenceClassifier, RejectsEmptyInput) {
  Rng rng(2);
  auto model = make_one_layer_lstm(3, 2, 4, 0.0, rng);
  EXPECT_THROW((void)model.forward(Sequence{}), std::invalid_argument);
  EXPECT_THROW((void)model.forward(SparseSequence{}), std::invalid_argument);
}

TEST(SequenceClassifier, EndToEndGradientsMatchNumerical) {
  Rng rng(3);
  auto model = make_two_layer_lstm(4, 3, 5, 0.0, rng);  // no dropout: exact
  Sequence input = random_sequence(2, 2, 4, rng);
  const std::vector<std::int32_t> labels = {1, 4};

  auto loss = [&] {
    const Matrix logits = model.forward(input, /*training=*/false);
    return softmax_cross_entropy(logits, labels).loss;
  };

  model.zero_grad();
  const Matrix logits = model.forward(input, /*training=*/true);
  const auto ce = softmax_cross_entropy(logits, labels);
  const Sequence dx = model.backward(ce.grad_logits);

  // Check one parameter matrix per layer and the input gradients.
  auto* lstm0 = dynamic_cast<Lstm*>(&model.layer(0));
  ASSERT_NE(lstm0, nullptr);
  testing::expect_grad_matches(lstm0->w_ih(), *lstm0->gradients()[0], loss);

  testing::expect_grad_matches(model.head().weight(),
                               *model.head().gradients()[0], loss);

  ASSERT_EQ(dx.size(), 2u);
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        const double expected = testing::numeric_grad(input[t], r, c, loss);
        EXPECT_NEAR(dx[t](r, c), expected,
                    3e-3 + 0.06 * std::abs(expected));
      }
    }
  }
}

TEST(SequenceClassifier, TrainableParamsExcludeFrozenLayers) {
  Rng rng(4);
  auto model = make_two_layer_lstm(4, 3, 5, 0.1, rng);
  const std::size_t all = model.all_params().size();
  EXPECT_EQ(model.trainable_params().size(), all);

  model.layer(0).set_trainable(false);
  EXPECT_EQ(model.trainable_params().size(), all - 3);  // lstm has 3 tensors

  model.head().set_trainable(false);
  EXPECT_EQ(model.trainable_params().size(), all - 5);  // head has 2
}

TEST(SequenceClassifier, ParameterCountMatchesArchitecture) {
  Rng rng(5);
  auto model = make_one_layer_lstm(10, 8, 6, 0.0, rng);
  // LSTM: 4*8*10 + 4*8*8 + 4*8 = 320 + 256 + 32 = 608. Head: 6*8 + 6 = 54.
  EXPECT_EQ(model.parameter_count(), 608u + 54u);
}

TEST(SequenceClassifier, CloneIsDeepAndEquivalent) {
  Rng rng(6);
  auto model = make_two_layer_lstm(5, 4, 7, 0.0, rng);
  auto copy = model.clone();

  Rng data_rng(7);
  const Sequence input = random_sequence(2, 3, 5, data_rng);
  EXPECT_EQ(model.forward(input), copy.forward(input));

  auto* lstm0 = dynamic_cast<Lstm*>(&copy.layer(0));
  ASSERT_NE(lstm0, nullptr);
  lstm0->w_ih()(0, 0) += 0.5f;
  EXPECT_NE(model.forward(input), copy.forward(input));
}

TEST(SequenceClassifier, CloneKeepsFreezeFlags) {
  Rng rng(8);
  auto model = make_two_layer_lstm(5, 4, 7, 0.1, rng);
  model.layer(0).set_trainable(false);
  auto copy = model.clone();
  EXPECT_FALSE(copy.layer(0).trainable());
  EXPECT_TRUE(copy.layer(2).trainable());
}

TEST(SequenceClassifier, InsertLayerPlacesBeforeIndex) {
  Rng rng(9);
  auto model = make_two_layer_lstm(5, 4, 7, 0.0, rng);  // [lstm, lstm]
  model.insert_layer(2, std::make_unique<Lstm>(4, 4, rng));
  EXPECT_EQ(model.layer_count(), 3u);
  EXPECT_EQ(model.layer(2).kind(), "lstm");
  EXPECT_THROW(model.insert_layer(99, std::make_unique<Lstm>(4, 4, rng)),
               std::out_of_range);
}

TEST(SequenceClassifier, PredictProbaIsSoftmaxedForward) {
  Rng rng(10);
  auto model = make_one_layer_lstm(4, 3, 5, 0.0, rng);
  const Sequence input = random_sequence(2, 2, 4, rng);
  const Matrix probs = model.predict_proba(input);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (const float p : probs.row(r)) total += p;
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(SequenceClassifier, SaveLoadRoundTripPreservesOutputs) {
  Rng rng(11);
  auto model = make_two_layer_lstm(5, 4, 6, 0.1, rng);
  model.layer(0).set_trainable(false);

  const auto path =
      std::filesystem::temp_directory_path() / "pelican_model_test.bin";
  model.save_file(path);
  auto loaded = SequenceClassifier::load_file(path);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.layer_count(), model.layer_count());
  EXPECT_FALSE(loaded.layer(0).trainable());

  Rng data_rng(12);
  const Sequence input = random_sequence(2, 3, 5, data_rng);
  EXPECT_EQ(model.forward(input), loaded.forward(input));
}

TEST(SequenceClassifier, LoadRejectsCorruptKind) {
  const auto path =
      std::filesystem::temp_directory_path() / "pelican_model_bad.bin";
  {
    BinaryWriter writer(path, 1);
    writer.write_u64(1);
    writer.write_string("alien_layer");
    writer.finish();
  }
  BinaryReader reader(path, 1);
  EXPECT_THROW((void)SequenceClassifier::load(reader), SerializeError);
  std::filesystem::remove(path);
}

TEST(SequenceClassifier, DropoutOnlyActiveInTraining) {
  Rng rng(13);
  auto model = make_two_layer_lstm(5, 4, 6, 0.5, rng);
  const Sequence input = random_sequence(2, 2, 5, rng);
  const Matrix a = model.forward(input, /*training=*/false);
  const Matrix b = model.forward(input, /*training=*/false);
  EXPECT_EQ(a, b);  // inference is deterministic
  const Matrix c = model.forward(input, /*training=*/true);
  const Matrix d = model.forward(input, /*training=*/true);
  EXPECT_NE(c, d);  // training jitters through dropout
}

}  // namespace
}  // namespace pelican::nn
