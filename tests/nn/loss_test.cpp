#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace pelican::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Rng rng(1);
  const Matrix logits = Matrix::randn(4, 7, 3.0f, rng);
  const Matrix probs = softmax(logits);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    double total = 0.0;
    for (const float p : probs.row(r)) {
      EXPECT_GE(p, 0.0f);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(Softmax, KnownValues) {
  Matrix logits(1, 2);
  logits(0, 0) = 0.0f;
  logits(0, 1) = std::log(3.0f);
  const Matrix probs = softmax(logits);
  EXPECT_NEAR(probs(0, 0), 0.25f, 1e-6);
  EXPECT_NEAR(probs(0, 1), 0.75f, 1e-6);
}

TEST(Softmax, StableUnderLargeLogits) {
  Matrix logits(1, 3);
  logits(0, 0) = 10000.0f;
  logits(0, 1) = 9999.0f;
  logits(0, 2) = -10000.0f;
  const Matrix probs = softmax(logits);
  EXPECT_TRUE(std::isfinite(probs(0, 0)));
  EXPECT_GT(probs(0, 0), probs(0, 1));
  EXPECT_NEAR(probs(0, 2), 0.0f, 1e-12);
}

TEST(Softmax, TemperatureSharpens) {
  Matrix logits(1, 3);
  logits(0, 0) = 1.0f;
  logits(0, 1) = 0.5f;
  logits(0, 2) = 0.0f;
  const Matrix warm = softmax(logits, 1.0);
  const Matrix cold = softmax(logits, 0.1);
  EXPECT_GT(cold(0, 0), warm(0, 0));
  EXPECT_LT(cold(0, 2), warm(0, 2));
}

TEST(Softmax, ExtremeTemperatureSaturates) {
  Matrix logits(1, 4);
  logits(0, 0) = 0.3f;
  logits(0, 1) = 0.2f;
  logits(0, 2) = 0.1f;
  logits(0, 3) = 0.0f;
  const Matrix probs = softmax(logits, 1e-5);
  EXPECT_NEAR(probs(0, 0), 1.0f, 1e-6);
  EXPECT_NEAR(probs(0, 1), 0.0f, 1e-6);
}

TEST(Softmax, TemperaturePreservesOrdering) {
  Rng rng(2);
  const Matrix logits = Matrix::randn(8, 10, 2.0f, rng);
  for (const double t : {10.0, 1.0, 0.1, 1e-3}) {
    const Matrix probs = softmax(logits, t);
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      for (std::size_t a = 0; a < logits.cols(); ++a) {
        for (std::size_t b = a + 1; b < logits.cols(); ++b) {
          if (logits(r, a) > logits(r, b)) {
            EXPECT_GE(probs(r, a), probs(r, b))
                << "ordering violated at T=" << t;
          }
        }
      }
    }
  }
}

TEST(Softmax, RejectsNonPositiveTemperature) {
  const Matrix logits(1, 2);
  EXPECT_THROW((void)softmax(logits, 0.0), std::invalid_argument);
  EXPECT_THROW((void)softmax(logits, -1.0), std::invalid_argument);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  Rng rng(3);
  const Matrix logits = Matrix::randn(3, 5, 2.0f, rng);
  const Matrix lp = log_softmax(logits);
  const Matrix p = softmax(logits);
  for (std::size_t i = 0; i < lp.size(); ++i) {
    EXPECT_NEAR(std::exp(lp.flat()[i]), p.flat()[i], 1e-5);
  }
}

TEST(CrossEntropy, KnownValue) {
  Matrix logits(1, 2, 0.0f);  // uniform -> loss = ln 2
  const std::vector<std::int32_t> labels = {0};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, std::log(2.0), 1e-6);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 1) = 50.0f;
  const std::vector<std::int32_t> labels = {1};
  EXPECT_NEAR(softmax_cross_entropy(logits, labels).loss, 0.0, 1e-6);
}

TEST(CrossEntropy, GradientIsProbMinusOneHotOverBatch) {
  Rng rng(4);
  const Matrix logits = Matrix::randn(4, 5, 1.0f, rng);
  const std::vector<std::int32_t> labels = {1, 0, 4, 2};
  const auto result = softmax_cross_entropy(logits, labels);
  const Matrix probs = softmax(logits);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      const float expected =
          (probs(r, c) -
           (static_cast<std::int32_t>(c) == labels[r] ? 1.0f : 0.0f)) /
          4.0f;
      EXPECT_NEAR(result.grad_logits(r, c), expected, 1e-5f);
    }
  }
}

TEST(CrossEntropy, GradientSumsToZeroPerRow) {
  Rng rng(5);
  const Matrix logits = Matrix::randn(3, 6, 1.0f, rng);
  const std::vector<std::int32_t> labels = {0, 3, 5};
  const auto result = softmax_cross_entropy(logits, labels);
  for (std::size_t r = 0; r < 3; ++r) {
    double total = 0.0;
    for (const float g : result.grad_logits.row(r)) total += g;
    EXPECT_NEAR(total, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  const Matrix logits(2, 3, 0.0f);
  const std::vector<std::int32_t> wrong_count = {0};
  EXPECT_THROW((void)softmax_cross_entropy(logits, wrong_count),
               std::invalid_argument);
  const std::vector<std::int32_t> out_of_range = {0, 3};
  EXPECT_THROW((void)softmax_cross_entropy(logits, out_of_range),
               std::invalid_argument);
  const std::vector<std::int32_t> negative = {0, -1};
  EXPECT_THROW((void)softmax_cross_entropy(logits, negative),
               std::invalid_argument);
}

TEST(TopK, ReturnsDescendingIndices) {
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
  const auto top = topk_indices(std::span<const float>(scores), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

TEST(TopK, TieBreaksByLowerIndex) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f};
  const auto top = topk_indices(std::span<const float>(scores), 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(TopK, KLargerThanSizeClamps) {
  const std::vector<double> scores = {1.0, 2.0};
  const auto top = topk_indices(std::span<const double>(scores), 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
}

}  // namespace
}  // namespace pelican::nn
