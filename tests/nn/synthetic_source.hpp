// A tiny deterministic BatchSource for nn-level tests: the label equals the
// one-hot index active at the final timestep, so a working model/trainer can
// fit it quickly and a broken gradient can't.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/data.hpp"

namespace pelican::nn::testing {

class SyntheticSource final : public BatchSource {
 public:
  SyntheticSource(std::size_t samples, std::size_t classes, std::size_t steps,
                  std::uint64_t seed, double label_noise = 0.0)
      : classes_(classes), steps_(steps) {
    Rng rng(seed);
    hot_.resize(samples * steps);
    labels_.resize(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      for (std::size_t t = 0; t < steps; ++t) {
        hot_[s * steps + t] =
            static_cast<std::uint32_t>(rng.below(classes));
      }
      const auto last = hot_[s * steps + steps - 1];
      labels_[s] = rng.chance(label_noise)
                       ? static_cast<std::int32_t>(rng.below(classes))
                       : static_cast<std::int32_t>(last);
    }
  }

  [[nodiscard]] std::size_t size() const override { return labels_.size(); }
  [[nodiscard]] std::size_t seq_len() const override { return steps_; }
  [[nodiscard]] std::size_t input_dim() const override { return classes_; }
  [[nodiscard]] std::size_t num_classes() const override { return classes_; }

  void materialize(std::span<const std::uint32_t> indices, Sequence& x,
                   std::vector<std::int32_t>& y) const override {
    x.assign(steps_, Matrix(indices.size(), classes_, 0.0f));
    y.resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::size_t s = indices[i];
      for (std::size_t t = 0; t < steps_; ++t) {
        x[t](i, hot_[s * steps_ + t]) = 1.0f;
      }
      y[i] = labels_[s];
    }
  }

 private:
  std::size_t classes_;
  std::size_t steps_;
  std::vector<std::uint32_t> hot_;
  std::vector<std::int32_t> labels_;
};

}  // namespace pelican::nn::testing
