#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/metrics.hpp"
#include "synthetic_source.hpp"

namespace pelican::nn {
namespace {

using testing::SyntheticSource;

TrainConfig fast_config() {
  TrainConfig config;
  config.epochs = 25;
  config.batch_size = 32;
  config.lr = 5e-3;
  config.seed = 7;
  return config;
}

TEST(Trainer, LearnsCopyTask) {
  const SyntheticSource data(600, 6, 2, /*seed=*/1);
  Rng rng(2);
  auto model = make_one_layer_lstm(6, 16, 6, 0.0, rng);
  const auto report = train(model, data, fast_config());

  EXPECT_EQ(report.epochs_run, 25u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_GT(topk_accuracy(model, data, 1), 0.9);
}

TEST(Trainer, LossDecreasesMonotonicallyEarly) {
  const SyntheticSource data(400, 5, 2, 3);
  Rng rng(4);
  auto model = make_one_layer_lstm(5, 12, 5, 0.0, rng);
  const auto report = train(model, data, fast_config());
  EXPECT_LT(report.epoch_loss[5], report.epoch_loss[0]);
}

TEST(Trainer, DeterministicGivenSeed) {
  const SyntheticSource data(200, 4, 2, 5);
  Rng rng_a(6), rng_b(6);
  auto model_a = make_one_layer_lstm(4, 8, 4, 0.0, rng_a);
  auto model_b = make_one_layer_lstm(4, 8, 4, 0.0, rng_b);
  TrainConfig config = fast_config();
  config.epochs = 5;
  const auto report_a = train(model_a, data, config);
  const auto report_b = train(model_b, data, config);
  EXPECT_EQ(report_a.epoch_loss, report_b.epoch_loss);

  Sequence x;
  std::vector<std::int32_t> y;
  const std::vector<std::uint32_t> idx = {0, 1, 2};
  data.materialize(idx, x, y);
  EXPECT_EQ(model_a.forward(x), model_b.forward(x));
}

TEST(Trainer, FrozenLayerNeverChanges) {
  const SyntheticSource data(300, 5, 2, 8);
  Rng rng(9);
  auto model = make_two_layer_lstm(5, 8, 5, 0.0, rng);
  model.layer(0).set_trainable(false);
  const Matrix frozen_before = *model.layer(0).parameters()[0];
  const Matrix tunable_before = *model.layer(1).parameters()[0];

  TrainConfig config = fast_config();
  config.epochs = 5;
  (void)train(model, data, config);

  EXPECT_EQ(*model.layer(0).parameters()[0], frozen_before)
      << "frozen layer must stay bit-identical";
  EXPECT_NE(*model.layer(1).parameters()[0], tunable_before);
}

TEST(Trainer, ValidationAccuracyTracked) {
  const SyntheticSource data(400, 4, 2, 10);
  const SyntheticSource val(100, 4, 2, 11);
  Rng rng(12);
  auto model = make_one_layer_lstm(4, 12, 4, 0.0, rng);
  TrainConfig config = fast_config();
  config.epochs = 8;
  const auto report = train(model, data, config, &val);
  EXPECT_EQ(report.validation_top1.size(), report.epochs_run);
  EXPECT_GT(report.validation_top1.back(), report.validation_top1.front());
}

TEST(Trainer, EarlyStoppingHaltsAndRestoresBest) {
  // Validation is pure noise, so no epoch can durably improve: training must
  // stop after `patience` stalls instead of running all epochs.
  const SyntheticSource data(200, 4, 2, 13);
  const SyntheticSource val(50, 4, 2, 14, /*label_noise=*/1.0);
  Rng rng(15);
  auto model = make_one_layer_lstm(4, 8, 4, 0.0, rng);
  TrainConfig config = fast_config();
  config.epochs = 50;
  config.patience = 3;
  const auto report = train(model, data, config, &val);
  EXPECT_TRUE(report.early_stopped);
  EXPECT_LT(report.epochs_run, 50u);
}

TEST(Trainer, LrDecayChangesTrajectory) {
  const SyntheticSource data(200, 4, 2, 16);
  Rng rng_a(17), rng_b(17);
  auto model_a = make_one_layer_lstm(4, 8, 4, 0.0, rng_a);
  auto model_b = make_one_layer_lstm(4, 8, 4, 0.0, rng_b);
  TrainConfig config = fast_config();
  config.epochs = 10;
  const auto plain = train(model_a, data, config);
  config.lr_decay = 0.5;
  const auto decayed = train(model_b, data, config);
  EXPECT_NE(plain.epoch_loss.back(), decayed.epoch_loss.back());
}

TEST(Trainer, RejectsBadInputs) {
  Rng rng(18);
  auto model = make_one_layer_lstm(4, 8, 4, 0.0, rng);
  const SyntheticSource empty(0, 4, 2, 19);
  EXPECT_THROW((void)train(model, empty, fast_config()),
               std::invalid_argument);

  const SyntheticSource data(10, 4, 2, 20);
  TrainConfig config = fast_config();
  config.batch_size = 0;
  EXPECT_THROW((void)train(model, data, config), std::invalid_argument);
}

TEST(Trainer, EvaluateLossMatchesTrainingSignal) {
  const SyntheticSource data(300, 5, 2, 21);
  Rng rng(22);
  auto model = make_one_layer_lstm(5, 12, 5, 0.0, rng);
  const double before = evaluate_loss(model, data);
  (void)train(model, data, fast_config());
  const double after = evaluate_loss(model, data);
  EXPECT_LT(after, before);
}

TEST(SubsetSource, ViewsBaseWithoutCopy) {
  const SyntheticSource data(100, 4, 2, 23);
  const SubsetSource first_half = SubsetSource::range(data, 0, 50);
  EXPECT_EQ(first_half.size(), 50u);
  EXPECT_EQ(first_half.num_classes(), 4u);

  Sequence x_base, x_view;
  std::vector<std::int32_t> y_base, y_view;
  const std::vector<std::uint32_t> idx = {10};
  data.materialize(idx, x_base, y_base);
  const std::vector<std::uint32_t> idx_view = {10};
  first_half.materialize(idx_view, x_view, y_view);
  EXPECT_EQ(x_base[0], x_view[0]);
  EXPECT_EQ(y_base, y_view);
}

}  // namespace
}  // namespace pelican::nn
