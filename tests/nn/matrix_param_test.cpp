// Property sweep: all three GEMM variants must agree with the reference
// triple loop across a grid of shapes, including degenerate (1-sized) and
// parallel-path (large) shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace pelican::nn {
namespace {

using Shape = std::tuple<int, int, int>;  // m, k, n

Matrix naive(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float total = 0.0f;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        total += a(i, kk) * b(kk, j);
      }
      out(i, j) = total;
    }
  }
  return out;
}

Matrix transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) out(c, r) = m(r, c);
  }
  return out;
}

class MatmulShapeSweep : public ::testing::TestWithParam<Shape> {
 protected:
  void SetUp() override {
    const auto [m, k, n] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
    a_ = Matrix::randn(static_cast<std::size_t>(m),
                       static_cast<std::size_t>(k), 1.0f, rng);
    b_ = Matrix::randn(static_cast<std::size_t>(k),
                       static_cast<std::size_t>(n), 1.0f, rng);
    expected_ = naive(a_, b_);
    // Tolerance grows with the reduction length (float accumulation).
    tol_ = 1e-5f * static_cast<float>(k) + 1e-4f;
  }

  Matrix a_, b_, expected_;
  float tol_ = 1e-4f;
};

TEST_P(MatmulShapeSweep, PlainMatchesReference) {
  Matrix out;
  matmul(a_, b_, out);
  ASSERT_EQ(out.rows(), expected_.rows());
  ASSERT_EQ(out.cols(), expected_.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.flat()[i], expected_.flat()[i], tol_) << "index " << i;
  }
}

TEST_P(MatmulShapeSweep, TransposedBMatchesReference) {
  const Matrix bt = transpose(b_);
  Matrix out;
  matmul_bt(a_, bt, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.flat()[i], expected_.flat()[i], tol_) << "index " << i;
  }
}

TEST_P(MatmulShapeSweep, TransposedAMatchesReference) {
  const Matrix at = transpose(a_);
  Matrix out;
  matmul_at(at, b_, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.flat()[i], expected_.flat()[i], tol_) << "index " << i;
  }
}

TEST_P(MatmulShapeSweep, AccumulateEqualsTwoApplications) {
  Matrix out;
  matmul(a_, b_, out);
  matmul(a_, b_, out, /*accumulate=*/true);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.flat()[i], 2.0f * expected_.flat()[i], 2.0f * tol_);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapeSweep,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 7, 3}, Shape{5, 1, 4},
                      Shape{3, 4, 1}, Shape{8, 16, 8}, Shape{17, 13, 29},
                      Shape{64, 96, 80}, Shape{130, 150, 128}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param)) + "n" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace pelican::nn
