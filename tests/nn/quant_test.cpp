#include "nn/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "nn/quant_lstm.hpp"
#include "nn/sparse.hpp"

namespace pelican::nn {
namespace {

bool same_bits(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

TEST(QuantizedMatrix, RoundTripErrorBoundedByHalfScale) {
  Rng rng(1);
  const Matrix m = Matrix::randn(7, 13, 2.0f, rng);
  const QuantizedMatrix q = QuantizedMatrix::quantize_rows(m);
  ASSERT_EQ(q.rows(), 7u);
  ASSERT_EQ(q.cols(), 13u);
  const Matrix back = q.dequantize();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    // Round-to-nearest: each weight moves by at most half a quantization
    // step. scale = max|row| / 127 per row.
    const float tol = q.scale(r) * 0.5f + 1e-7f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_NEAR(back(r, c), m(r, c), tol) << r << "," << c;
      EXPECT_GE(q.value(r, c), -127);
      EXPECT_LE(q.value(r, c), 127);
    }
  }
}

TEST(QuantizedMatrix, ZeroRowGetsZeroScale) {
  Matrix m(3, 4, 0.0f);
  m(0, 1) = 2.54f;  // rows 1,2 stay all-zero
  const QuantizedMatrix q = QuantizedMatrix::quantize_rows(m);
  EXPECT_GT(q.scale(0), 0.0f);
  EXPECT_EQ(q.scale(1), 0.0f);
  EXPECT_EQ(q.scale(2), 0.0f);
  const Matrix back = q.dequantize();
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(back(1, c), 0.0f);
    EXPECT_EQ(back(2, c), 0.0f);
  }
}

TEST(QuantizedMatrix, SerializeRoundTripUnderCrc) {
  Rng rng(2);
  const QuantizedMatrix q =
      QuantizedMatrix::quantize_rows(Matrix::randn(5, 9, 1.0f, rng));
  const auto path = std::filesystem::temp_directory_path() / "qmat_test.bin";
  {
    BinaryWriter writer(path, 1);
    q.save(writer);
    writer.finish();
  }
  {
    BinaryReader reader(path, 1);
    EXPECT_EQ(QuantizedMatrix::load(reader), q);
  }
  // Flip one stored int8 payload byte: the header CRC must reject the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30, std::ios::beg);  // inside the values span
    char byte = 0;
    f.seekg(30, std::ios::beg);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(30, std::ios::beg);
    f.write(&byte, 1);
  }
  EXPECT_THROW(BinaryReader(path, 1), SerializeError);
  std::filesystem::remove(path);
}

TEST(QuantKernels, DenseMatchesManualDequantizedProduct) {
  Rng rng(3);
  const Matrix x = Matrix::randn(4, 6, 1.0f, rng);
  const QuantizedMatrix q =
      QuantizedMatrix::quantize_rows(Matrix::randn(5, 6, 1.0f, rng));
  Matrix out;
  qmatmul_bt(x, q, out);
  ASSERT_EQ(out.rows(), 4u);
  ASSERT_EQ(out.cols(), 5u);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t j = 0; j < 5; ++j) {
      // Reference: same ascending-k fp32 chain over exact int8 converts.
      float acc = 0.0f;
      for (std::size_t k = 0; k < 6; ++k) {
        acc += x(r, k) * static_cast<float>(q.value(j, k));
      }
      EXPECT_TRUE(same_bits(out(r, j), acc * q.scale(j))) << r << "," << j;
    }
  }
}

TEST(QuantKernels, SparseBitIdenticalToDense) {
  Rng rng(4);
  const QuantizedMatrix q =
      QuantizedMatrix::quantize_rows(Matrix::randn(12, 9, 1.0f, rng));
  const auto qt = transposed_values(q);
  SparseRows x(3, 9);
  x.add(0, 2, 1.0f);
  x.add(1, 0, 0.5f);
  x.add(1, 8, 1.0f);
  // row 2 left empty
  Matrix dense_out, sparse_out;
  qmatmul_bt(x.to_dense(), q, dense_out);
  sparse_qmatmul_pre_t(x, qt, q.scales(), sparse_out);
  ASSERT_EQ(sparse_out.rows(), dense_out.rows());
  ASSERT_EQ(sparse_out.cols(), dense_out.cols());
  for (std::size_t i = 0; i < dense_out.size(); ++i) {
    EXPECT_TRUE(same_bits(dense_out.flat()[i], sparse_out.flat()[i])) << i;
  }
}

SparseSequence one_hot(std::size_t steps, std::size_t batch, std::size_t dim,
                       Rng& rng) {
  SparseSequence x(steps, SparseRows(batch, dim));
  for (auto& step : x) {
    for (std::size_t r = 0; r < batch; ++r) step.add(r, rng.below(dim), 1.0f);
  }
  return x;
}

QuantizedLstm quantize(const Lstm& lstm) {
  return QuantizedLstm(QuantizedMatrix::quantize_rows(lstm.w_ih()),
                       QuantizedMatrix::quantize_rows(lstm.w_hh()),
                       lstm.bias());
}

TEST(QuantizedLstmTest, SparseDenseBitIdenticalAtSimdTailSizes) {
  for (const std::size_t hidden : {std::size_t{17}, std::size_t{33}}) {
    Rng rng(200 + hidden);
    Lstm lstm(13, hidden, rng);
    QuantizedLstm qlstm = quantize(lstm);
    const SparseSequence sparse = one_hot(3, 4, 13, rng);
    const Sequence dense = to_dense(sparse);
    const Sequence out_d = qlstm.forward(dense, false);
    const Sequence out_s = qlstm.forward_sparse(sparse, false);
    ASSERT_EQ(out_d.size(), out_s.size());
    for (std::size_t t = 0; t < out_d.size(); ++t) {
      for (std::size_t i = 0; i < out_d[t].size(); ++i) {
        EXPECT_TRUE(same_bits(out_d[t].flat()[i], out_s[t].flat()[i]))
            << "h=" << hidden << " t=" << t << " i=" << i;
      }
    }
  }
}

TEST(QuantizedLstmTest, TracksFp32WithinQuantizationTolerance) {
  Rng rng(5);
  Lstm lstm(11, 32, rng);
  QuantizedLstm qlstm = quantize(lstm);
  const SparseSequence input = one_hot(4, 3, 11, rng);
  const Sequence fp32 = lstm.forward_sparse(input, false);
  const Sequence int8 = qlstm.forward_sparse(input, false);
  for (std::size_t t = 0; t < fp32.size(); ++t) {
    for (std::size_t i = 0; i < fp32[t].size(); ++i) {
      // Xavier weights for fanin 11+32 give scales ~2.8e-3; the gate sums
      // stay small and sigmoids/tanh contract error, so hidden states track
      // to well under 1e-2 over 4 recurrent steps.
      EXPECT_NEAR(fp32[t].flat()[i], int8[t].flat()[i], 2e-2f);
    }
  }
}

TEST(QuantizedLstmTest, IsStructurallyInferenceOnly) {
  Rng rng(6);
  Lstm lstm(5, 8, rng);
  QuantizedLstm qlstm = quantize(lstm);
  EXPECT_FALSE(qlstm.trainable());
  EXPECT_TRUE(qlstm.parameters().empty());
  EXPECT_TRUE(qlstm.gradients().empty());
  Sequence grads(1);
  grads[0] = Matrix(2, 8, 0.0f);
  EXPECT_THROW((void)qlstm.backward(grads), std::logic_error);
}

TEST(QuantizedModel, QuantizeForServingRoundTripsThroughCheckpoint) {
  Rng rng(7);
  auto model = make_two_layer_lstm(19, 16, 10, 0.1, rng);
  EXPECT_FALSE(is_quantized(model));
  auto qmodel = quantize_for_serving(model);
  EXPECT_TRUE(is_quantized(qmodel));
  EXPECT_EQ(qmodel.layer_count(), model.layer_count());
  EXPECT_EQ(qmodel.layer(0).kind(), "qlstm");
  EXPECT_TRUE(qmodel.head().is_quantized());

  const auto path =
      std::filesystem::temp_directory_path() / "qmodel_test.bin";
  qmodel.save_file(path);
  auto loaded = SequenceClassifier::load_file(path);
  EXPECT_TRUE(is_quantized(loaded));

  // The loaded artifact must serve byte-for-byte what the in-memory
  // quantized model serves (load_layer "qlstm" dispatch + head tag byte).
  Rng data_rng(8);
  const SparseSequence input = one_hot(3, 2, 19, data_rng);
  const Matrix a = qmodel.forward(input, false);
  const Matrix b = loaded.forward(input, false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_bits(a.flat()[i], b.flat()[i])) << i;
  }
  std::filesystem::remove(path);
}

TEST(QuantizedModel, CheckpointShrinksAboutFourfold) {
  Rng rng(9);
  // Large enough that fixed framing overhead is noise next to the weights.
  auto model = make_one_layer_lstm(64, 64, 64, 0.0, rng);
  const auto dir = std::filesystem::temp_directory_path();
  const auto fp32_path = dir / "qsize_fp32.bin";
  const auto int8_path = dir / "qsize_int8.bin";
  model.save_file(fp32_path);
  quantize_for_serving(model).save_file(int8_path);
  const auto fp32_bytes = std::filesystem::file_size(fp32_path);
  const auto int8_bytes = std::filesystem::file_size(int8_path);
  EXPECT_LT(int8_bytes, fp32_bytes / 3);  // ~4x minus scales/bias overhead
  std::filesystem::remove(fp32_path);
  std::filesystem::remove(int8_path);
}

TEST(QuantizedModel, QuantizedModelBackwardThrows) {
  Rng rng(10);
  auto qmodel = quantize_for_serving(make_one_layer_lstm(7, 8, 5, 0.0, rng));
  Rng data_rng(11);
  const SparseSequence input = one_hot(2, 3, 7, data_rng);
  (void)qmodel.forward(input, false);
  EXPECT_THROW((void)qmodel.backward(Matrix(3, 5, 0.0f)), std::logic_error);
}

}  // namespace
}  // namespace pelican::nn
