// Property-style gradient checks: the LSTM backward pass must agree with
// finite differences across a grid of shapes (input width, hidden size,
// sequence length, batch) — catching indexing bugs that a single fixed
// shape can hide.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "grad_check.hpp"

namespace pelican::nn {
namespace {

using ShapeParam = std::tuple<int, int, int, int>;  // input, hidden, T, batch

class LstmShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(LstmShapeSweep, ParameterAndInputGradientsMatchNumerical) {
  const auto [input_dim, hidden, steps, batch] = GetParam();
  Rng rng(static_cast<std::uint64_t>(input_dim * 1000 + hidden * 100 +
                                     steps * 10 + batch));
  Lstm lstm(static_cast<std::size_t>(input_dim),
            static_cast<std::size_t>(hidden), rng);

  Sequence input(static_cast<std::size_t>(steps));
  for (auto& x : input) {
    x = Matrix::randn(static_cast<std::size_t>(batch),
                      static_cast<std::size_t>(input_dim), 1.0f, rng);
  }
  const Matrix coeffs = Matrix::randn(static_cast<std::size_t>(batch),
                                      static_cast<std::size_t>(hidden), 1.0f,
                                      rng);

  auto loss = [&] {
    const Sequence out = lstm.forward(input, false);
    double total = 0.0;
    const Matrix& last = out.back();
    for (std::size_t i = 0; i < last.size(); ++i) {
      total += static_cast<double>(last.flat()[i]) * coeffs.flat()[i];
    }
    return total;
  };

  lstm.zero_grad();
  (void)lstm.forward(input, false);
  Sequence dout(static_cast<std::size_t>(steps));
  dout.back() = coeffs;
  const Sequence dx = lstm.backward(dout);

  testing::expect_grad_matches(lstm.w_ih(), *lstm.gradients()[0], loss);
  testing::expect_grad_matches(lstm.w_hh(), *lstm.gradients()[1], loss);
  testing::expect_grad_matches(lstm.bias(), *lstm.gradients()[2], loss);

  // Input gradients on the first step (the longest BPTT path).
  for (std::size_t r = 0; r < input[0].rows(); ++r) {
    for (std::size_t c = 0; c < input[0].cols(); ++c) {
      const double expected = testing::numeric_grad(input[0], r, c, loss);
      EXPECT_NEAR(dx[0](r, c), expected, 3e-3 + 0.06 * std::abs(expected));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LstmShapeSweep,
    ::testing::Values(ShapeParam{1, 1, 1, 1}, ShapeParam{2, 3, 2, 2},
                      ShapeParam{3, 2, 4, 1}, ShapeParam{5, 4, 2, 3},
                      ShapeParam{4, 6, 3, 2}),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      return "i" + std::to_string(std::get<0>(info.param)) + "h" +
             std::to_string(std::get<1>(info.param)) + "t" +
             std::to_string(std::get<2>(info.param)) + "b" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace pelican::nn
