#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/trainer.hpp"
#include "synthetic_source.hpp"

namespace pelican::nn {
namespace {

using testing::SyntheticSource;

TEST(TopKHit, BasicRanking) {
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
  EXPECT_TRUE(topk_hit(scores, 1, 1));
  EXPECT_FALSE(topk_hit(scores, 3, 1));
  EXPECT_TRUE(topk_hit(scores, 3, 2));
  EXPECT_FALSE(topk_hit(scores, 0, 3));
  EXPECT_TRUE(topk_hit(scores, 0, 4));
}

TEST(TopKHit, TieBreakMatchesTopkIndices) {
  // Equal scores: the lower index ranks first.
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f};
  EXPECT_TRUE(topk_hit(scores, 0, 1));
  EXPECT_FALSE(topk_hit(scores, 1, 1));
  EXPECT_TRUE(topk_hit(scores, 1, 2));
  EXPECT_FALSE(topk_hit(scores, 2, 2));
}

TEST(TopKAccuracy, PerfectAndChanceModels) {
  const SyntheticSource data(400, 5, 2, 1);
  Rng rng(2);
  auto model = make_one_layer_lstm(5, 16, 5, 0.0, rng);

  // Untrained: near-chance for top-1 on 5 classes (loose bound).
  const double untrained = topk_accuracy(model, data, 1);
  EXPECT_LT(untrained, 0.6);

  TrainConfig config;
  config.epochs = 30;
  config.batch_size = 32;
  config.lr = 5e-3;
  (void)train(model, data, config);
  EXPECT_GT(topk_accuracy(model, data, 1), 0.9);
}

TEST(TopKAccuracy, MonotoneInK) {
  const SyntheticSource data(200, 6, 2, 3);
  Rng rng(4);
  auto model = make_one_layer_lstm(6, 8, 6, 0.0, rng);
  const std::vector<std::size_t> ks = {1, 2, 3, 4, 5, 6};
  const auto accs = topk_accuracies(model, data, ks);
  ASSERT_EQ(accs.size(), ks.size());
  for (std::size_t i = 1; i < accs.size(); ++i) {
    EXPECT_GE(accs[i], accs[i - 1]);
  }
  EXPECT_DOUBLE_EQ(accs.back(), 1.0);  // k = classes always hits
}

TEST(TopKAccuracy, EmptyDataIsZero) {
  const SyntheticSource data(0, 4, 2, 5);
  Rng rng(6);
  auto model = make_one_layer_lstm(4, 8, 4, 0.0, rng);
  EXPECT_DOUBLE_EQ(topk_accuracy(model, data, 1), 0.0);
}

TEST(TopKAccuracy, SingleBatchMatchesMultiBatch) {
  const SyntheticSource data(150, 5, 2, 7);
  Rng rng(8);
  auto model = make_one_layer_lstm(5, 8, 5, 0.0, rng);
  const double one_pass = topk_accuracy(model, data, 2, /*batch_size=*/1000);
  const double many_pass = topk_accuracy(model, data, 2, /*batch_size=*/16);
  EXPECT_DOUBLE_EQ(one_pass, many_pass);
}

}  // namespace
}  // namespace pelican::nn
