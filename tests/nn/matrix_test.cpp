#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"

namespace pelican::nn {
namespace {

Matrix make(std::size_t rows, std::size_t cols,
            std::initializer_list<float> values) {
  Matrix m(rows, cols);
  std::size_t i = 0;
  for (const float v : values) m.flat()[i++] = v;
  return m;
}

/// Reference triple-loop product for validating the optimized kernels.
Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float total = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) total += a(i, k) * b(k, j);
      out(i, j) = total;
    }
  }
  return out;
}

Matrix transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) out(c, r) = m(r, c);
  }
  return out;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FALSE(m.empty());
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(m(0, 1), -2.0f);
  EXPECT_TRUE(Matrix().empty());
}

TEST(Matrix, RowSpanViewsData) {
  Matrix m = make(2, 2, {1, 2, 3, 4});
  const auto row = m.row(1);
  EXPECT_FLOAT_EQ(row[0], 3.0f);
  EXPECT_FLOAT_EQ(row[1], 4.0f);
  m.row(0)[1] = 9.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 9.0f);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a = make(2, 2, {1, 2, 3, 4});
  const Matrix b = make(2, 2, {10, 20, 30, 40});
  a += b;
  EXPECT_FLOAT_EQ(a(1, 1), 44.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a(1, 1), 4.0f);
  a *= 0.5f;
  EXPECT_FLOAT_EQ(a(0, 0), 0.5f);
}

TEST(Matrix, ArithmeticShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, SquaredNorm) {
  const Matrix m = make(1, 3, {3, 4, 0});
  EXPECT_DOUBLE_EQ(m.squared_norm(), 25.0);
}

TEST(Matrix, ResizeZeroes) {
  Matrix m = make(1, 2, {5, 6});
  m.resize(2, 2);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 0.0f);
}

TEST(Matrix, RandomFactoriesDeterministic) {
  Rng r1(3), r2(3);
  EXPECT_EQ(Matrix::randn(3, 4, 1.0f, r1), Matrix::randn(3, 4, 1.0f, r2));
  Rng r3(4), r4(4);
  EXPECT_EQ(Matrix::xavier(5, 6, r3), Matrix::xavier(5, 6, r4));
}

TEST(Matrix, XavierWithinLimit) {
  Rng rng(5);
  const Matrix m = Matrix::xavier(16, 48, rng);
  const float limit = std::sqrt(6.0f / (16 + 48));
  for (const float v : m.flat()) {
    EXPECT_LE(std::abs(v), limit);
  }
}

TEST(Matmul, MatchesNaive) {
  Rng rng(6);
  const Matrix a = Matrix::randn(7, 5, 1.0f, rng);
  const Matrix b = Matrix::randn(5, 9, 1.0f, rng);
  Matrix out;
  matmul(a, b, out);
  const Matrix expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.flat()[i], expected.flat()[i], 1e-4f);
  }
}

TEST(Matmul, AccumulateAddsToExisting) {
  Rng rng(7);
  const Matrix a = Matrix::randn(3, 4, 1.0f, rng);
  const Matrix b = Matrix::randn(4, 2, 1.0f, rng);
  Matrix out(3, 2, 1.0f);
  matmul(a, b, out, /*accumulate=*/true);
  const Matrix expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.flat()[i], expected.flat()[i] + 1.0f, 1e-4f);
  }
}

TEST(Matmul, NonAccumulateOverwrites) {
  Rng rng(8);
  const Matrix a = Matrix::randn(3, 4, 1.0f, rng);
  const Matrix b = Matrix::randn(4, 2, 1.0f, rng);
  Matrix out(3, 2, 99.0f);
  matmul(a, b, out);
  const Matrix expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.flat()[i], expected.flat()[i], 1e-4f);
  }
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(4, 2);
  Matrix out;
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

TEST(Matmul, LargeTriggersParallelPathSameResult) {
  Rng rng(9);
  const Matrix a = Matrix::randn(128, 150, 1.0f, rng);
  const Matrix b = Matrix::randn(150, 160, 1.0f, rng);
  Matrix out;
  matmul(a, b, out);  // large enough to take the parallel path
  const Matrix expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.flat()[i], expected.flat()[i], 2e-3f);
  }
}

TEST(MatmulBt, MatchesNaiveOnTranspose) {
  Rng rng(10);
  const Matrix a = Matrix::randn(6, 5, 1.0f, rng);
  const Matrix b = Matrix::randn(7, 5, 1.0f, rng);
  Matrix out;
  matmul_bt(a, b, out);
  const Matrix expected = naive_matmul(a, transpose(b));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.flat()[i], expected.flat()[i], 1e-4f);
  }
}

TEST(MatmulBt, AccumulateWorks) {
  Rng rng(11);
  const Matrix a = Matrix::randn(2, 3, 1.0f, rng);
  const Matrix b = Matrix::randn(4, 3, 1.0f, rng);
  Matrix out(2, 4, 0.5f);
  matmul_bt(a, b, out, /*accumulate=*/true);
  const Matrix expected = naive_matmul(a, transpose(b));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.flat()[i], expected.flat()[i] + 0.5f, 1e-4f);
  }
}

TEST(MatmulAt, MatchesNaiveOnTranspose) {
  Rng rng(12);
  const Matrix a = Matrix::randn(5, 6, 1.0f, rng);
  const Matrix b = Matrix::randn(5, 4, 1.0f, rng);
  Matrix out;
  matmul_at(a, b, out);
  const Matrix expected = naive_matmul(transpose(a), b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.flat()[i], expected.flat()[i], 1e-4f);
  }
}

TEST(MatmulAt, AccumulateUsedForGradients) {
  Rng rng(13);
  const Matrix a = Matrix::randn(3, 2, 1.0f, rng);
  const Matrix b = Matrix::randn(3, 4, 1.0f, rng);
  Matrix out(2, 4, 0.0f);
  matmul_at(a, b, out, /*accumulate=*/true);
  matmul_at(a, b, out, /*accumulate=*/true);
  const Matrix once = naive_matmul(transpose(a), b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.flat()[i], 2.0f * once.flat()[i], 1e-4f);
  }
}

// The determinism contract of the packed kernels (matrix.hpp): row r of a
// batched product is bit-identical to the same row computed alone, for both
// accumulate modes — this is what makes batched serving, single queries,
// and any thread split interchangeable.
TEST(MatmulBt, RowsInvariantAcrossBatchSizes) {
  Rng rng(20);
  const Matrix a = Matrix::randn(33, 24, 1.0f, rng);   // pack path
  const Matrix b = Matrix::randn(40, 24, 1.0f, rng);
  const Matrix seed_rows = Matrix::randn(33, 40, 1.0f, rng);

  Matrix fresh_batch, acc_batch = seed_rows;
  matmul_bt(a, b, fresh_batch);
  matmul_bt(a, b, acc_batch, /*accumulate=*/true);

  for (std::size_t r = 0; r < a.rows(); ++r) {
    Matrix a_row(1, a.cols());
    std::copy(a.row(r).begin(), a.row(r).end(), a_row.row(0).begin());

    Matrix fresh_single;  // m=1 dot path
    matmul_bt(a_row, b, fresh_single);
    Matrix acc_single(1, b.rows());  // m=1 strided-axpy path
    std::copy(seed_rows.row(r).begin(), seed_rows.row(r).end(),
              acc_single.row(0).begin());
    matmul_bt(a_row, b, acc_single, /*accumulate=*/true);

    for (std::size_t j = 0; j < b.rows(); ++j) {
      ASSERT_EQ(fresh_single(0, j), fresh_batch(r, j)) << "row " << r;
      ASSERT_EQ(acc_single(0, j), acc_batch(r, j)) << "row " << r;
    }
  }
}

TEST(Matmul, BatchOneWideTakesColumnSplitSameResult) {
  Rng rng(21);
  // m=1 with k*n >= the parallel threshold: exercises the column-threaded
  // split that gives single-query forwards the pool.
  const Matrix a = Matrix::randn(1, 1024, 1.0f, rng);
  const Matrix b = Matrix::randn(1024, 2048, 1.0f, rng);
  Matrix out;
  matmul(a, b, out);
  const Matrix expected = naive_matmul(a, b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.flat()[i], expected.flat()[i], 2e-3f);
  }
}

TEST(MatmulAt, LargeOutputChunksOverRowsSameResult) {
  Rng rng(22);
  // m >= 16 and 2M+ flops: the m-chunked (training backprop) path.
  const Matrix a = Matrix::randn(64, 96, 1.0f, rng);
  const Matrix b = Matrix::randn(64, 384, 1.0f, rng);
  Matrix out;
  matmul_at(a, b, out);
  const Matrix expected = naive_matmul(transpose(a), b);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out.flat()[i], expected.flat()[i], 2e-3f);
  }
}

TEST(Transposed, RoundTrips) {
  Rng rng(23);
  const Matrix m = Matrix::randn(5, 9, 1.0f, rng);
  const Matrix t = transposed(m);
  ASSERT_EQ(t.rows(), 9u);
  ASSERT_EQ(t.cols(), 5u);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(t(c, r), m(r, c));
    }
  }
  EXPECT_EQ(transposed(t), m);
}

TEST(RowBroadcast, AddsBiasToEveryRow) {
  Matrix m = make(2, 3, {0, 0, 0, 1, 1, 1});
  const std::vector<float> bias = {1, 2, 3};
  add_row_broadcast(m, bias);
  EXPECT_FLOAT_EQ(m(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 2.0f);
}

TEST(RowBroadcast, WidthMismatchThrows) {
  Matrix m(2, 3);
  const std::vector<float> bias = {1, 2};
  EXPECT_THROW(add_row_broadcast(m, bias), std::invalid_argument);
}

TEST(ColumnSums, AccumulatesIntoOutput) {
  const Matrix m = make(2, 2, {1, 2, 3, 4});
  std::vector<float> sums = {10, 20};
  column_sums(m, sums);
  EXPECT_FLOAT_EQ(sums[0], 14.0f);
  EXPECT_FLOAT_EQ(sums[1], 26.0f);
}

TEST(Hadamard, ElementwiseProduct) {
  const Matrix a = make(2, 2, {1, 2, 3, 4});
  const Matrix b = make(2, 2, {5, 6, 7, 8});
  Matrix out;
  hadamard(a, b, out);
  EXPECT_FLOAT_EQ(out(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 32.0f);
}

TEST(Hadamard, ShapeMismatchThrows) {
  const Matrix a(1, 2);
  const Matrix b(2, 1);
  Matrix out;
  EXPECT_THROW(hadamard(a, b, out), std::invalid_argument);
}

}  // namespace
}  // namespace pelican::nn
