#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "grad_check.hpp"

namespace pelican::nn {
namespace {

using testing::expect_grad_matches;

TEST(Linear, ForwardComputesAffineMap) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  layer.weight().fill(0.0f);
  layer.weight()(0, 0) = 1.0f;  // y0 = x0
  layer.weight()(1, 1) = 2.0f;  // y1 = 2 x1
  layer.bias()(0, 2) = -1.0f;   // y2 = -1

  Matrix x(1, 2);
  x(0, 0) = 3.0f;
  x(0, 1) = 4.0f;
  const Matrix y = layer.forward(x);
  ASSERT_EQ(y.rows(), 1u);
  ASSERT_EQ(y.cols(), 3u);
  EXPECT_FLOAT_EQ(y(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y(0, 2), -1.0f);
}

TEST(Linear, ForwardRejectsWrongWidth) {
  Rng rng(2);
  Linear layer(4, 2, rng);
  Matrix x(1, 3);
  EXPECT_THROW((void)layer.forward(x), std::invalid_argument);
}

TEST(Linear, GradientsMatchNumerical) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  Matrix x = Matrix::randn(5, 4, 1.0f, rng);
  const std::vector<std::int32_t> labels = {0, 2, 1, 2, 0};

  auto loss = [&] {
    Linear copy = layer;  // fresh cache each evaluation
    const Matrix logits = copy.forward(x);
    return softmax_cross_entropy(logits, labels).loss;
  };

  layer.zero_grad();
  const Matrix logits = layer.forward(x);
  const auto ce = softmax_cross_entropy(logits, labels);
  const Matrix dx = layer.backward(ce.grad_logits);

  expect_grad_matches(layer.weight(), *layer.gradients()[0], loss);
  expect_grad_matches(layer.bias(), *layer.gradients()[1], loss);

  // Input gradients (the attack path) as well.
  Matrix dx_numeric(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      dx_numeric(r, c) =
          static_cast<float>(testing::numeric_grad(x, r, c, loss));
    }
  }
  for (std::size_t i = 0; i < dx.size(); ++i) {
    EXPECT_NEAR(dx.flat()[i], dx_numeric.flat()[i], 3e-3);
  }
}

TEST(Linear, BackwardAccumulatesAcrossCalls) {
  Rng rng(4);
  Linear layer(2, 2, rng);
  Matrix x = Matrix::randn(3, 2, 1.0f, rng);
  Matrix dy(3, 2, 1.0f);

  layer.zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(dy);
  const Matrix grad_once = *layer.gradients()[0];

  (void)layer.forward(x);
  (void)layer.backward(dy);
  const Matrix& grad_twice = *layer.gradients()[0];
  for (std::size_t i = 0; i < grad_twice.size(); ++i) {
    EXPECT_NEAR(grad_twice.flat()[i], 2.0f * grad_once.flat()[i], 1e-5f);
  }
}

TEST(Linear, BackwardRejectsWrongShape) {
  Rng rng(5);
  Linear layer(2, 3, rng);
  Matrix x(4, 2);
  (void)layer.forward(x);
  Matrix bad(4, 2);  // wrong width (should be 3)
  EXPECT_THROW((void)layer.backward(bad), std::invalid_argument);
}

TEST(Linear, SaveLoadRoundTrip) {
  Rng rng(6);
  Linear layer(3, 4, rng);
  layer.set_trainable(false);
  const auto path =
      std::filesystem::temp_directory_path() / "pelican_linear_test.bin";
  {
    BinaryWriter writer(path, 1);
    layer.save(writer);
    writer.finish();
  }
  BinaryReader reader(path, 1);
  Linear loaded = Linear::load(reader);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.weight(), layer.weight());
  EXPECT_EQ(loaded.bias(), layer.bias());
  EXPECT_FALSE(loaded.trainable());

  Matrix x = Matrix::randn(2, 3, 1.0f, rng);
  EXPECT_EQ(loaded.forward(x), layer.forward(x));
}

TEST(Linear, DimsReportCorrectly) {
  Rng rng(7);
  const Linear layer(5, 9, rng);
  EXPECT_EQ(layer.input_dim(), 5u);
  EXPECT_EQ(layer.output_dim(), 9u);
}

}  // namespace
}  // namespace pelican::nn
