#include "nn/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "nn/lstm.hpp"
#include "nn/sparse.hpp"

namespace pelican::nn {
namespace {

/// Bit-level float equality: EXPECT_EQ on floats treats -0.0f == 0.0f and
/// fails to distinguish NaN payloads; the determinism contract is about
/// bits, so compare bits.
bool same_bits(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

std::vector<float> grid(float lo, float hi, std::size_t n) {
  std::vector<float> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<float>(i) / (n - 1);
  }
  return xs;
}

// The awkward span lengths: below / just above / well above kSimdWidth with
// a nonzero tail in every case (for width 4: tails of 1, 1, 3).
const std::size_t kTailSizes[] = {17, 33, 127};

TEST(Activations, SigmoidIsTheOneDefinition) {
  // The hoisted scalar sigmoid (formerly file-local in lstm.cpp).
  EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
  for (const float x : grid(-20.0f, 20.0f, 101)) {
    EXPECT_TRUE(same_bits(sigmoid(x), 1.0f / (1.0f + std::exp(-x)))) << x;
  }
  EXPECT_GT(sigmoid(5.0f), 0.99f);
  EXPECT_LT(sigmoid(-5.0f), 0.01f);
}

TEST(Activations, ExactInplaceMatchesScalarLoopBits) {
  Rng rng(1);
  for (const std::size_t n : kTailSizes) {
    std::vector<float> sig(n), tanh_v(n), ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      sig[i] = tanh_v[i] = ref[i] = rng.normal() * 4.0f;
    }
    sigmoid_inplace(sig.data(), n, ActivationMode::kExact);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_bits(sig[i], sigmoid(ref[i]))) << n << ":" << i;
    }
    tanh_inplace(tanh_v.data(), n, ActivationMode::kExact);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_bits(tanh_v[i], std::tanh(ref[i]))) << n << ":" << i;
    }
  }
}

TEST(Activations, FastKernelsWithinDocumentedBounds) {
  // The bounds the header documents over [-30, 30]; a dense grid plus the
  // saturation extremes. If a kernel change moves the max error past these,
  // the header's contract must be re-measured, not the test loosened.
  float max_sig_err = 0.0f, max_tanh_err = 0.0f;
  for (const float x : grid(-30.0f, 30.0f, 200001)) {
    max_sig_err =
        std::max(max_sig_err, std::abs(fast_sigmoid(x) - sigmoid(x)));
    max_tanh_err =
        std::max(max_tanh_err, std::abs(fast_tanh(x) - std::tanh(x)));
  }
  EXPECT_LE(max_sig_err, 4e-7f);
  EXPECT_LE(max_tanh_err, 8e-7f);
  // Saturation: far inputs must not blow up (fast_exp clamps its range).
  EXPECT_NEAR(fast_sigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(fast_sigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(fast_tanh(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(fast_tanh(-100.0f), -1.0f, 1e-6f);
}

TEST(Activations, FastInplaceBitsIndependentOfLanePosition) {
  // The tail contract: an element's result must not depend on whether it
  // was processed in a full vector or the scalar tail. Computing each
  // element alone (guaranteed tail/scalar path) must reproduce the batched
  // kernel bit-for-bit.
  Rng rng(2);
  for (const std::size_t n : kTailSizes) {
    std::vector<float> batched(n), ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      batched[i] = ref[i] = rng.normal() * 6.0f;
    }
    sigmoid_inplace(batched.data(), n, ActivationMode::kFastApprox);
    for (std::size_t i = 0; i < n; ++i) {
      float alone = ref[i];
      sigmoid_inplace(&alone, 1, ActivationMode::kFastApprox);
      EXPECT_TRUE(same_bits(batched[i], alone)) << n << ":" << i;
      EXPECT_TRUE(same_bits(alone, fast_sigmoid(ref[i]))) << n << ":" << i;
    }
    std::vector<float> batched_t = ref;
    tanh_inplace(batched_t.data(), n, ActivationMode::kFastApprox);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_bits(batched_t[i], fast_tanh(ref[i]))) << n << ":" << i;
    }
  }
}

TEST(Activations, FusedGatePassExactMatchesUnfusedReference) {
  Rng rng(3);
  for (const std::size_t hidden : kTailSizes) {
    std::vector<float> gates(4 * hidden), bias(4 * hidden), c_prev(hidden);
    for (auto& v : gates) v = rng.normal() * 2.0f;
    for (auto& v : bias) v = rng.normal() * 0.5f;
    for (auto& v : c_prev) v = rng.normal();

    // Unfused reference: bias add sweep, then the seed's scalar gate loop.
    std::vector<float> ref_gates = gates;
    for (std::size_t i = 0; i < 4 * hidden; ++i) ref_gates[i] += bias[i];
    std::vector<float> ref_c(hidden), ref_tanh_c(hidden), ref_h(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      const float i_g = sigmoid(ref_gates[j]);
      const float f_g = sigmoid(ref_gates[hidden + j]);
      const float g_g = std::tanh(ref_gates[2 * hidden + j]);
      const float o_g = sigmoid(ref_gates[3 * hidden + j]);
      ref_gates[j] = i_g;
      ref_gates[hidden + j] = f_g;
      ref_gates[2 * hidden + j] = g_g;
      ref_gates[3 * hidden + j] = o_g;
      ref_c[j] = f_g * c_prev[j] + i_g * g_g;
      ref_tanh_c[j] = std::tanh(ref_c[j]);
      ref_h[j] = o_g * ref_tanh_c[j];
    }

    std::vector<float> c(hidden), tanh_c(hidden), h(hidden);
    lstm_gate_pass(gates.data(), bias.data(), c_prev.data(), c.data(),
                   tanh_c.data(), h.data(), hidden, ActivationMode::kExact);
    for (std::size_t i = 0; i < 4 * hidden; ++i) {
      EXPECT_TRUE(same_bits(gates[i], ref_gates[i])) << hidden << ":" << i;
    }
    for (std::size_t j = 0; j < hidden; ++j) {
      EXPECT_TRUE(same_bits(c[j], ref_c[j])) << hidden << ":" << j;
      EXPECT_TRUE(same_bits(tanh_c[j], ref_tanh_c[j])) << hidden << ":" << j;
      EXPECT_TRUE(same_bits(h[j], ref_h[j])) << hidden << ":" << j;
    }
  }
}

SparseSequence one_hot(std::size_t steps, std::size_t batch, std::size_t dim,
                       Rng& rng) {
  SparseSequence x(steps, SparseRows(batch, dim));
  for (auto& step : x) {
    for (std::size_t r = 0; r < batch; ++r) step.add(r, rng.below(dim), 1.0f);
  }
  return x;
}

TEST(Activations, LstmSparseDenseBitIdenticalAtSimdTailSizes) {
  // The ISSUE 6 SIMD-tail regression: hidden sizes that leave every tail
  // length, through the full fused pass, in both activation modes.
  for (const std::size_t hidden : kTailSizes) {
    for (const ActivationMode mode :
         {ActivationMode::kExact, ActivationMode::kFastApprox}) {
      Rng rng(100 + hidden);
      Lstm lstm(19, hidden, rng);
      lstm.set_activation_mode(mode);
      const SparseSequence sparse = one_hot(3, 5, 19, rng);
      const Sequence dense = to_dense(sparse);
      const Sequence out_d = lstm.forward(dense, false);
      const Sequence out_s = lstm.forward_sparse(sparse, false);
      ASSERT_EQ(out_d.size(), out_s.size());
      for (std::size_t t = 0; t < out_d.size(); ++t) {
        for (std::size_t i = 0; i < out_d[t].size(); ++i) {
          EXPECT_TRUE(same_bits(out_d[t].flat()[i], out_s[t].flat()[i]))
              << to_string(mode) << " h=" << hidden << " t=" << t;
        }
      }
    }
  }
}

TEST(Activations, FastModeTracksExactWithinTolerance) {
  Rng rng(4);
  Lstm lstm(11, 33, rng);
  const SparseSequence input = one_hot(4, 3, 11, rng);
  const Sequence exact = lstm.forward_sparse(input, false);
  lstm.set_activation_mode(ActivationMode::kFastApprox);
  const Sequence fast = lstm.forward_sparse(input, false);
  for (std::size_t t = 0; t < exact.size(); ++t) {
    for (std::size_t i = 0; i < exact[t].size(); ++i) {
      // Per-step activation error is ~1e-6 (documented bounds above);
      // recurrence over 4 steps amplifies modestly.
      EXPECT_NEAR(exact[t].flat()[i], fast[t].flat()[i], 1e-5f);
    }
  }
}

TEST(Activations, CloneCarriesMode) {
  Rng rng(5);
  Lstm lstm(4, 6, rng);
  lstm.set_activation_mode(ActivationMode::kFastApprox);
  const auto copy = lstm.clone();
  EXPECT_EQ(static_cast<const Lstm&>(*copy).activation_mode(),
            ActivationMode::kFastApprox);
}

}  // namespace
}  // namespace pelican::nn
