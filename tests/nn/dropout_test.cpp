#include "nn/dropout.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace pelican::nn {
namespace {

Sequence ones_sequence(std::size_t steps, std::size_t batch, std::size_t dim) {
  return Sequence(steps, Matrix(batch, dim, 1.0f));
}

TEST(Dropout, IdentityAtInference) {
  Dropout layer(0.5, 4, 1);
  const Sequence input = ones_sequence(2, 3, 4);
  const Sequence out = layer.forward(input, /*training=*/false);
  ASSERT_EQ(out.size(), input.size());
  for (std::size_t t = 0; t < out.size(); ++t) EXPECT_EQ(out[t], input[t]);
}

TEST(Dropout, ZeroRateIsIdentityEvenTraining) {
  Dropout layer(0.0, 4, 2);
  const Sequence input = ones_sequence(1, 2, 4);
  EXPECT_EQ(layer.forward(input, true)[0], input[0]);
}

TEST(Dropout, TrainingZeroesApproximatelyRateFraction) {
  Dropout layer(0.3, 1000, 3);
  const Sequence input = ones_sequence(1, 10, 1000);
  const Sequence out = layer.forward(input, true);
  std::size_t zeros = 0;
  for (const float v : out[0].flat()) zeros += (v == 0.0f);
  const double fraction = static_cast<double>(zeros) / out[0].size();
  EXPECT_NEAR(fraction, 0.3, 0.03);
}

TEST(Dropout, SurvivorsAreScaled) {
  Dropout layer(0.25, 64, 4);
  const Sequence input = ones_sequence(1, 4, 64);
  const Sequence out = layer.forward(input, true);
  for (const float v : out[0].flat()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - 1.0f / 0.75f) < 1e-5f);
  }
}

TEST(Dropout, BackwardAppliesSameMask) {
  Dropout layer(0.5, 32, 5);
  const Sequence input = ones_sequence(1, 2, 32);
  const Sequence out = layer.forward(input, true);
  const Sequence grad_in = layer.backward(ones_sequence(1, 2, 32));
  // Zeroed activations must have zero gradient; survivors share the scale.
  for (std::size_t i = 0; i < out[0].size(); ++i) {
    EXPECT_FLOAT_EQ(grad_in[0].flat()[i], out[0].flat()[i]);
  }
}

TEST(Dropout, BackwardPassesEmptyGradThrough) {
  Dropout layer(0.5, 8, 6);
  const Sequence input = ones_sequence(3, 2, 8);
  (void)layer.forward(input, true);
  Sequence sparse_grads(3);
  sparse_grads[2] = Matrix(2, 8, 1.0f);
  const Sequence grad_in = layer.backward(sparse_grads);
  EXPECT_TRUE(grad_in[0].empty());
  EXPECT_TRUE(grad_in[1].empty());
  EXPECT_FALSE(grad_in[2].empty());
}

TEST(Dropout, BackwardIdentityAtInference) {
  Dropout layer(0.9, 4, 7);
  const Sequence input = ones_sequence(1, 1, 4);
  (void)layer.forward(input, false);
  const Sequence grads = ones_sequence(1, 1, 4);
  EXPECT_EQ(layer.backward(grads)[0], grads[0]);
}

TEST(Dropout, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(-0.1, 4, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0, 4, 1), std::invalid_argument);
}

TEST(Dropout, HasNoParameters) {
  Dropout layer(0.1, 4, 8);
  EXPECT_TRUE(layer.parameters().empty());
  EXPECT_TRUE(layer.gradients().empty());
}

TEST(Dropout, CloneKeepsConfiguration) {
  Dropout layer(0.35, 16, 9);
  auto clone = layer.clone();
  auto* d = dynamic_cast<Dropout*>(clone.get());
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->rate(), 0.35);
  EXPECT_EQ(d->input_dim(), 16u);
}

TEST(Dropout, MasksDifferAcrossCalls) {
  Dropout layer(0.5, 128, 10);
  const Sequence input = ones_sequence(1, 1, 128);
  const Sequence a = layer.forward(input, true);
  const Sequence b = layer.forward(input, true);
  EXPECT_NE(a[0], b[0]);
}

}  // namespace
}  // namespace pelican::nn
