// SparseRows and the one-hot fast-path kernels. The load-bearing claim
// (nn/sparse.hpp) is BIT-identity with the dense kernels — every comparison
// here is memcmp-strict, not tolerance-based, because the serving layer
// promises that switching encodings can never change a served prediction.
#include "nn/sparse.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "common/rng.hpp"
#include "nn/lstm.hpp"
#include "nn/linear.hpp"

namespace pelican::nn {
namespace {

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

/// Random sparse matrix with `per_row` entries in most rows (some rows left
/// empty) and signed values — deliberately more general than one-hot.
SparseRows random_sparse(std::size_t rows, std::size_t cols,
                         std::size_t per_row, Rng& rng) {
  SparseRows x(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    if (per_row > 0 && rng.below(5) == 0) continue;  // empty row
    std::size_t col = 0;
    for (std::size_t e = 0; e < per_row && col < cols; ++e) {
      col += rng.below(cols / per_row) + (e == 0 ? 0 : 1);
      if (col >= cols) break;
      x.add(r, col, static_cast<float>(rng.uniform(-2.0, 2.0)));
    }
  }
  return x;
}

TEST(SparseRows, BuildAndDensify) {
  SparseRows x(3, 5);
  x.add(0, 1, 2.0f);
  x.add(0, 4, -1.0f);
  x.add(2, 0, 3.0f);
  EXPECT_EQ(x.rows(), 3u);
  EXPECT_EQ(x.cols(), 5u);
  EXPECT_EQ(x.nnz(), 3u);
  ASSERT_EQ(x.row(0).size(), 2u);
  EXPECT_EQ(x.row(0)[1].col, 4u);
  EXPECT_TRUE(x.row(1).empty());
  ASSERT_EQ(x.row(2).size(), 1u);

  const Matrix dense = x.to_dense();
  EXPECT_FLOAT_EQ(dense(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(dense(0, 4), -1.0f);
  EXPECT_FLOAT_EQ(dense(2, 0), 3.0f);
  EXPECT_FLOAT_EQ(dense(1, 2), 0.0f);
}

TEST(SparseRows, RejectsOutOfOrderAndOutOfRange) {
  SparseRows x(3, 5);
  x.add(1, 2, 1.0f);
  EXPECT_THROW(x.add(0, 0, 1.0f), std::invalid_argument);  // row went back
  EXPECT_THROW(x.add(1, 2, 1.0f), std::invalid_argument);  // col not ascending
  EXPECT_THROW(x.add(1, 1, 1.0f), std::invalid_argument);
  EXPECT_THROW(x.add(3, 0, 1.0f), std::out_of_range);
  EXPECT_THROW(x.add(1, 5, 1.0f), std::out_of_range);
  x.add(1, 4, 1.0f);  // still fine after failed adds
  EXPECT_EQ(x.nnz(), 2u);
}

TEST(SparseMatmulBt, BitIdenticalToDenseBothBranches) {
  Rng rng(7);
  // k=40: per_row=3 over 17 rows keeps nnz < k (strided-gather branch);
  // per_row=8 over 64 rows forces nnz >= k (packed branch).
  for (const auto& [rows, per_row] :
       {std::pair<std::size_t, std::size_t>{17, 3}, {64, 8}, {1, 3}}) {
    const SparseRows x = random_sparse(rows, 40, per_row, rng);
    const Matrix w = Matrix::randn(24, 40, 1.0f, rng);
    Matrix sparse_out, dense_out;
    sparse_matmul_bt(x, w, sparse_out);
    matmul_bt(x.to_dense(), w, dense_out);
    expect_bit_identical(sparse_out, dense_out);

    // Accumulating into a live output (the LSTM recurrence shape).
    Matrix sparse_acc = Matrix::randn(rows, 24, 1.0f, rng);
    Matrix dense_acc = sparse_acc;
    sparse_matmul_bt(x, w, sparse_acc, /*accumulate=*/true);
    matmul_bt(x.to_dense(), w, dense_acc, /*accumulate=*/true);
    expect_bit_identical(sparse_acc, dense_acc);
  }
}

TEST(SparseMatmulPreT, MatchesUnpackedGather) {
  Rng rng(8);
  const SparseRows x = random_sparse(9, 30, 4, rng);
  const Matrix w = Matrix::randn(12, 30, 1.0f, rng);
  Matrix via_bt, via_pre_t;
  sparse_matmul_bt(x, w, via_bt);
  sparse_matmul_pre_t(x, transposed(w), via_pre_t);
  expect_bit_identical(via_bt, via_pre_t);
}

TEST(SparseMatmulAt, BitIdenticalToDense) {
  Rng rng(9);
  const SparseRows x = random_sparse(21, 18, 3, rng);
  const Matrix dy = Matrix::randn(21, 10, 1.0f, rng);
  Matrix sparse_out, dense_out;
  sparse_matmul_at(dy, x, sparse_out);
  matmul_at(dy, x.to_dense(), dense_out);
  expect_bit_identical(sparse_out, dense_out);

  Matrix sparse_acc = Matrix::randn(10, 18, 1.0f, rng);
  Matrix dense_acc = sparse_acc;
  sparse_matmul_at(dy, x, sparse_acc, /*accumulate=*/true);
  matmul_at(dy, x.to_dense(), dense_acc, /*accumulate=*/true);
  expect_bit_identical(sparse_acc, dense_acc);
}

/// One-hot sequence shaped like the mobility encoding: a few 1.0 entries
/// per row.
SparseSequence one_hot_sequence(std::size_t steps, std::size_t batch,
                                std::size_t dim, Rng& rng) {
  SparseSequence x(steps, SparseRows(batch, dim));
  for (auto& step : x) {
    for (std::size_t r = 0; r < batch; ++r) {
      // Four ascending hot columns, one per quarter of the input.
      for (std::size_t block = 0; block < 4; ++block) {
        const std::size_t lo = dim * block / 4;
        const std::size_t hi = dim * (block + 1) / 4;
        step.add(r, lo + rng.below(hi - lo), 1.0f);
      }
    }
  }
  return x;
}

class LstmSparseTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LstmSparseTest, ForwardAndBackwardBitIdenticalToDense) {
  const std::size_t batch = GetParam();
  Rng rng(10);
  Lstm dense_lstm(24, 6, rng);
  auto sparse_layer = dense_lstm.clone();
  auto& sparse_lstm = static_cast<Lstm&>(*sparse_layer);

  Rng data_rng(11);
  const SparseSequence x = one_hot_sequence(2, batch, 24, data_rng);
  const Sequence x_dense = to_dense(x);

  const Sequence out_dense = dense_lstm.forward(x_dense, false);
  const Sequence out_sparse = sparse_lstm.forward_sparse(x, false);
  ASSERT_EQ(out_dense.size(), out_sparse.size());
  for (std::size_t t = 0; t < out_dense.size(); ++t) {
    expect_bit_identical(out_dense[t], out_sparse[t]);
  }

  // Backward works off either cache and accumulates identical gradients.
  Sequence dout(2);
  dout[1] = Matrix::randn(batch, 6, 1.0f, data_rng);
  const Sequence dx_dense = dense_lstm.backward(dout);
  const Sequence dx_sparse = sparse_lstm.backward(dout);
  for (std::size_t t = 0; t < dx_dense.size(); ++t) {
    expect_bit_identical(dx_dense[t], dx_sparse[t]);
  }
  const auto grads_dense = dense_lstm.gradients();
  const auto grads_sparse = sparse_lstm.gradients();
  for (std::size_t g = 0; g < grads_dense.size(); ++g) {
    expect_bit_identical(*grads_dense[g], *grads_sparse[g]);
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, LstmSparseTest,
                         ::testing::Values(1, 32, 256));

TEST(LinearSparse, ForwardAndBackwardBitIdenticalToDense) {
  Rng rng(12);
  Linear dense_layer(20, 7, rng);
  Linear sparse_copy = dense_layer;

  Rng data_rng(13);
  const SparseRows x = random_sparse(15, 20, 4, data_rng);
  const Matrix y_dense = dense_layer.forward(x.to_dense());
  const Matrix y_sparse = sparse_copy.forward(x);
  expect_bit_identical(y_dense, y_sparse);

  const Matrix dy = Matrix::randn(15, 7, 1.0f, data_rng);
  expect_bit_identical(dense_layer.backward(dy), sparse_copy.backward(dy));
  expect_bit_identical(*dense_layer.gradients()[0],
                       *sparse_copy.gradients()[0]);
}

}  // namespace
}  // namespace pelican::nn
