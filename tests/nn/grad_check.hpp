// Finite-difference gradient checking shared by the nn test suites.
//
// All parameters are float32, so central differences carry ~1e-4 noise;
// checks use a mixed absolute/relative tolerance sized for that.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/matrix.hpp"

namespace pelican::nn::testing {

/// Central-difference estimate of d(loss)/d(param[r][c]) where `loss`
/// re-runs the full forward pass.
inline double numeric_grad(Matrix& param, std::size_t r, std::size_t c,
                           const std::function<double()>& loss,
                           float eps = 1e-2f) {
  const float saved = param(r, c);
  param(r, c) = saved + eps;
  const double up = loss();
  param(r, c) = saved - eps;
  const double down = loss();
  param(r, c) = saved;
  return (up - down) / (2.0 * static_cast<double>(eps));
}

/// Asserts every analytic gradient entry in `grad` matches the numeric
/// estimate for `param` under `loss`.
inline void expect_grad_matches(Matrix& param, const Matrix& grad,
                                const std::function<double()>& loss,
                                double abs_tol = 3e-3, double rel_tol = 6e-2,
                                float eps = 1e-2f) {
  ASSERT_EQ(param.rows(), grad.rows());
  ASSERT_EQ(param.cols(), grad.cols());
  for (std::size_t r = 0; r < param.rows(); ++r) {
    for (std::size_t c = 0; c < param.cols(); ++c) {
      const double expected = numeric_grad(param, r, c, loss, eps);
      const double actual = grad(r, c);
      const double tol =
          abs_tol + rel_tol * std::max(std::abs(expected), std::abs(actual));
      EXPECT_NEAR(actual, expected, tol)
          << "gradient mismatch at (" << r << ", " << c << ")";
    }
  }
}

}  // namespace pelican::nn::testing
