#include "nn/cv.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "synthetic_source.hpp"

namespace pelican::nn {
namespace {

using testing::SyntheticSource;

TEST(TimeSeriesFolds, ValidationAlwaysAfterTraining) {
  const auto folds = time_series_folds(100, 5);
  ASSERT_EQ(folds.size(), 5u);
  for (const auto& fold : folds) {
    EXPECT_GT(fold.train_end, 0u);
    EXPECT_GT(fold.validation_end, fold.train_end);
    EXPECT_LE(fold.validation_end, 100u);
  }
}

TEST(TimeSeriesFolds, ExpandingWindows) {
  const auto folds = time_series_folds(120, 4);
  for (std::size_t i = 1; i < folds.size(); ++i) {
    EXPECT_GT(folds[i].train_end, folds[i - 1].train_end);
    EXPECT_EQ(folds[i].train_end, folds[i - 1].validation_end);
  }
  EXPECT_EQ(folds.back().validation_end, 120u);
}

TEST(TimeSeriesFolds, RejectsDegenerateArgs) {
  EXPECT_THROW((void)time_series_folds(10, 0), std::invalid_argument);
  EXPECT_THROW((void)time_series_folds(3, 5), std::invalid_argument);
}

TEST(TimeSeriesFolds, SmallestValidCase) {
  const auto folds = time_series_folds(2, 1);
  ASSERT_EQ(folds.size(), 1u);
  EXPECT_EQ(folds[0].train_end, 1u);
  EXPECT_EQ(folds[0].validation_end, 2u);
}

TEST(CrossValidate, AveragesFoldScores) {
  const SyntheticSource data(100, 4, 2, 1);
  const auto folds = time_series_folds(data.size(), 4);
  int calls = 0;
  const double score = cross_validate(
      data, folds, [&](const BatchSource& train, const BatchSource& val) {
        ++calls;
        EXPECT_GT(train.size(), 0u);
        EXPECT_GT(val.size(), 0u);
        return static_cast<double>(calls);  // 1, 2, 3, 4
      });
  EXPECT_EQ(calls, 4);
  EXPECT_DOUBLE_EQ(score, 2.5);
}

TEST(CrossValidate, RejectsEmptyFolds) {
  const SyntheticSource data(10, 4, 2, 2);
  EXPECT_THROW(
      (void)cross_validate(data, {},
                           [](const BatchSource&, const BatchSource&) {
                             return 0.0;
                           }),
      std::invalid_argument);
}

TEST(GridSearch, PicksHighestScore) {
  struct Config {
    double lr;
  };
  const std::vector<Config> grid = {{0.1}, {0.01}, {0.001}};
  const auto result = grid_search<Config>(
      grid, [](const Config& c) { return c.lr == 0.01 ? 1.0 : 0.5; });
  EXPECT_DOUBLE_EQ(result.best.lr, 0.01);
  EXPECT_DOUBLE_EQ(result.best_score, 1.0);
  EXPECT_EQ(result.scores.size(), 3u);
}

TEST(GridSearch, TiePrefersEarlierEntry) {
  struct Config {
    int id;
  };
  const std::vector<Config> grid = {{1}, {2}, {3}};
  const auto result =
      grid_search<Config>(grid, [](const Config&) { return 0.7; });
  EXPECT_EQ(result.best.id, 1);
}

TEST(GridSearch, RejectsEmptyGrid) {
  struct Config {};
  const std::vector<Config> grid;
  EXPECT_THROW((void)grid_search<Config>(
                   grid, [](const Config&) { return 0.0; }),
               std::invalid_argument);
}

TEST(GridSearch, EndToEndSelectsWorkingLr) {
  // A real (tiny) hyperparameter search over the copy task: an absurd lr
  // must lose to a sensible one.
  const SyntheticSource data(200, 4, 2, 3);
  const auto folds = time_series_folds(data.size(), 2);

  struct Config {
    double lr;
  };
  const std::vector<Config> grid = {{1e-7}, {5e-3}};
  const auto result = grid_search<Config>(grid, [&](const Config& config) {
    return cross_validate(
        data, folds, [&](const BatchSource& train, const BatchSource& val) {
          Rng rng(4);
          auto model = make_one_layer_lstm(4, 8, 4, 0.0, rng);
          TrainConfig tc;
          tc.epochs = 10;
          tc.batch_size = 16;
          tc.lr = config.lr;
          (void)pelican::nn::train(model, train, tc);
          return topk_accuracy(model, val, 1);
        });
  });
  EXPECT_DOUBLE_EQ(result.best.lr, 5e-3);
}

}  // namespace
}  // namespace pelican::nn
