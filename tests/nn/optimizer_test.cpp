#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pelican::nn {
namespace {

/// Quadratic bowl f(w) = 0.5 * ||w - target||^2; gradient = w - target.
struct Bowl {
  Matrix w{1, 4, 0.0f};
  Matrix grad{1, 4, 0.0f};
  Matrix target{1, 4, 0.0f};

  Bowl() {
    for (std::size_t i = 0; i < 4; ++i) {
      target.flat()[i] = static_cast<float>(i) - 1.5f;
    }
  }

  void compute_grad() {
    for (std::size_t i = 0; i < 4; ++i) {
      grad.flat()[i] = w.flat()[i] - target.flat()[i];
    }
  }

  [[nodiscard]] double distance() const {
    double total = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      const double d = w.flat()[i] - target.flat()[i];
      total += d * d;
    }
    return std::sqrt(total);
  }

  [[nodiscard]] std::vector<ParamRef> params() { return {{&w, &grad}}; }
};

TEST(Sgd, ConvergesOnQuadratic) {
  Bowl bowl;
  Sgd opt(0.1);
  for (int i = 0; i < 200; ++i) {
    bowl.compute_grad();
    opt.step(bowl.params());
  }
  EXPECT_LT(bowl.distance(), 1e-4);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Bowl plain, with_momentum;
  Sgd opt_plain(0.01);
  Sgd opt_momentum(0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    plain.compute_grad();
    opt_plain.step(plain.params());
    with_momentum.compute_grad();
    opt_momentum.step(with_momentum.params());
  }
  EXPECT_LT(with_momentum.distance(), plain.distance());
}

TEST(Sgd, SingleStepMatchesHandComputation) {
  Matrix w(1, 1, 2.0f);
  Matrix g(1, 1, 0.5f);
  Sgd opt(0.1);
  const std::vector<ParamRef> params = {{&w, &g}};
  opt.step(params);
  EXPECT_NEAR(w(0, 0), 2.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Matrix w(1, 1, 1.0f);
  Matrix g(1, 1, 0.0f);  // zero gradient: only decay acts
  Sgd opt(0.1, 0.0, 0.5);
  const std::vector<ParamRef> params = {{&w, &g}};
  opt.step(params);
  EXPECT_NEAR(w(0, 0), 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Sgd, RejectsNonPositiveLr) {
  EXPECT_THROW(Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(Sgd(-1.0), std::invalid_argument);
}

TEST(Adam, ConvergesOnQuadratic) {
  Bowl bowl;
  Adam opt(0.05);
  for (int i = 0; i < 500; ++i) {
    bowl.compute_grad();
    opt.step(bowl.params());
  }
  EXPECT_LT(bowl.distance(), 1e-3);
}

TEST(Adam, FirstStepHasMagnitudeNearLr) {
  // With bias correction, the first Adam step is ~lr regardless of gradient
  // scale.
  Matrix w(1, 1, 0.0f);
  Matrix g(1, 1, 123.0f);
  Adam opt(0.01);
  const std::vector<ParamRef> params = {{&w, &g}};
  opt.step(params);
  EXPECT_NEAR(std::abs(w(0, 0)), 0.01f, 1e-4f);
}

TEST(Adam, WeightDecayIsDecoupled) {
  Matrix w(1, 1, 1.0f);
  Matrix g(1, 1, 0.0f);
  Adam opt(0.1, /*weight_decay=*/0.5);
  const std::vector<ParamRef> params = {{&w, &g}};
  opt.step(params);
  // Zero gradient: only the decoupled decay term lr * wd * w applies.
  EXPECT_NEAR(w(0, 0), 1.0f - 0.1f * 0.5f * 1.0f, 1e-5f);
}

TEST(Adam, ThrowsWhenParamSetChangesWithoutReset) {
  Matrix w1(1, 2), g1(1, 2), w2(1, 3), g2(1, 3);
  Adam opt(0.01);
  const std::vector<ParamRef> first = {{&w1, &g1}};
  opt.step(first);
  const std::vector<ParamRef> second = {{&w2, &g2}};
  EXPECT_THROW(opt.step(second), std::invalid_argument);
  opt.reset();
  EXPECT_NO_THROW(opt.step(second));
}

TEST(Adam, RejectsNonPositiveLr) {
  EXPECT_THROW(Adam(0.0), std::invalid_argument);
}

TEST(ClipGradientNorm, ScalesDownLargeGradients) {
  Matrix w(1, 2);
  Matrix g(1, 2);
  g(0, 0) = 3.0f;
  g(0, 1) = 4.0f;  // norm 5
  const std::vector<ParamRef> params = {{&w, &g}};
  const double pre_norm = clip_gradient_norm(params, 1.0);
  EXPECT_NEAR(pre_norm, 5.0, 1e-6);
  EXPECT_NEAR(std::sqrt(g.squared_norm()), 1.0, 1e-5);
  EXPECT_NEAR(g(0, 0) / g(0, 1), 0.75f, 1e-5f);  // direction preserved
}

TEST(ClipGradientNorm, LeavesSmallGradientsAlone) {
  Matrix w(1, 1);
  Matrix g(1, 1, 0.5f);
  const std::vector<ParamRef> params = {{&w, &g}};
  (void)clip_gradient_norm(params, 1.0);
  EXPECT_FLOAT_EQ(g(0, 0), 0.5f);
}

TEST(ClipGradientNorm, GlobalNormAcrossParams) {
  Matrix w1(1, 1), w2(1, 1);
  Matrix g1(1, 1, 3.0f), g2(1, 1, 4.0f);
  const std::vector<ParamRef> params = {{&w1, &g1}, {&w2, &g2}};
  const double norm = clip_gradient_norm(params, 2.5);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(g1(0, 0), 1.5f, 1e-5f);
  EXPECT_NEAR(g2(0, 0), 2.0f, 1e-5f);
}

}  // namespace
}  // namespace pelican::nn
