#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "grad_check.hpp"

namespace pelican::nn {
namespace {

using testing::expect_grad_matches;
using testing::numeric_grad;

Sequence random_sequence(std::size_t steps, std::size_t batch,
                         std::size_t dim, Rng& rng) {
  Sequence seq(steps);
  for (auto& x : seq) x = Matrix::randn(batch, dim, 1.0f, rng);
  return seq;
}

/// Loss = sum of the last timestep's outputs weighted by fixed coefficients,
/// a simple differentiable readout for gradient checking.
double readout_loss(Lstm& lstm, const Sequence& input, const Matrix& coeffs) {
  const Sequence out = lstm.forward(input, /*training=*/false);
  double total = 0.0;
  const Matrix& last = out.back();
  for (std::size_t r = 0; r < last.rows(); ++r) {
    for (std::size_t c = 0; c < last.cols(); ++c) {
      total += static_cast<double>(last(r, c)) * coeffs(r, c);
    }
  }
  return total;
}

TEST(Lstm, ForwardShapes) {
  Rng rng(1);
  Lstm lstm(5, 3, rng);
  const Sequence input = random_sequence(4, 2, 5, rng);
  const Sequence out = lstm.forward(input, false);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& h : out) {
    EXPECT_EQ(h.rows(), 2u);
    EXPECT_EQ(h.cols(), 3u);
  }
}

TEST(Lstm, OutputsBoundedByTanh) {
  Rng rng(2);
  Lstm lstm(4, 6, rng);
  const Sequence input = random_sequence(3, 5, 4, rng);
  for (const auto& h : lstm.forward(input, false)) {
    for (const float v : h.flat()) {
      EXPECT_LT(std::abs(v), 1.0f);  // |h| = |o * tanh(c)| < 1
    }
  }
}

TEST(Lstm, ZeroInputZeroWeightsGivesZeroOutput) {
  Rng rng(3);
  Lstm lstm(2, 2, rng);
  lstm.w_ih().fill(0.0f);
  lstm.w_hh().fill(0.0f);
  lstm.bias().fill(0.0f);
  Sequence input(2, Matrix(1, 2, 0.0f));
  const Sequence out = lstm.forward(input, false);
  // Gates: i = f = o = 0.5, g = 0 -> c = 0, h = 0.
  for (const auto& h : out) {
    for (const float v : h.flat()) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Lstm, ForwardRejectsEmptyAndMismatched) {
  Rng rng(4);
  Lstm lstm(3, 2, rng);
  EXPECT_THROW((void)lstm.forward({}, false), std::invalid_argument);
  Sequence bad(1, Matrix(2, 5));
  EXPECT_THROW((void)lstm.forward(bad, false), std::invalid_argument);
}

TEST(Lstm, ParameterGradientsMatchNumerical) {
  Rng rng(5);
  Lstm lstm(3, 4, rng);
  const Sequence input = random_sequence(3, 2, 3, rng);
  const Matrix coeffs = Matrix::randn(2, 4, 1.0f, rng);

  auto loss = [&] { return readout_loss(lstm, input, coeffs); };

  lstm.zero_grad();
  (void)lstm.forward(input, false);
  Sequence dout(3);
  dout[2] = coeffs;  // gradient only on the last step, like the real model
  (void)lstm.backward(dout);

  expect_grad_matches(lstm.w_ih(), *lstm.gradients()[0], loss);
  expect_grad_matches(lstm.w_hh(), *lstm.gradients()[1], loss);
  expect_grad_matches(lstm.bias(), *lstm.gradients()[2], loss);
}

TEST(Lstm, InputGradientsMatchNumerical) {
  Rng rng(6);
  Lstm lstm(3, 4, rng);
  Sequence input = random_sequence(2, 2, 3, rng);
  const Matrix coeffs = Matrix::randn(2, 4, 1.0f, rng);

  auto loss = [&] { return readout_loss(lstm, input, coeffs); };

  (void)lstm.forward(input, false);
  Sequence dout(2);
  dout[1] = coeffs;
  const Sequence dx = lstm.backward(dout);
  ASSERT_EQ(dx.size(), 2u);

  for (std::size_t t = 0; t < input.size(); ++t) {
    for (std::size_t r = 0; r < input[t].rows(); ++r) {
      for (std::size_t c = 0; c < input[t].cols(); ++c) {
        const double expected = numeric_grad(input[t], r, c, loss);
        EXPECT_NEAR(dx[t](r, c), expected, 3e-3 + 0.06 * std::abs(expected))
            << "t=" << t << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(Lstm, GradientFlowsThroughAllTimesteps) {
  Rng rng(7);
  Lstm lstm(3, 4, rng);
  const Sequence input = random_sequence(5, 1, 3, rng);
  (void)lstm.forward(input, false);
  Sequence dout(5);
  dout[4] = Matrix(1, 4, 1.0f);
  const Sequence dx = lstm.backward(dout);
  // Supervision at the last step must reach the first input.
  EXPECT_GT(dx[0].squared_norm(), 0.0);
}

TEST(Lstm, GradientsOnAllStepsMatchNumerical) {
  // Supervise every timestep, not just the last (stacked-LSTM case).
  Rng rng(8);
  Lstm lstm(2, 3, rng);
  Sequence input = random_sequence(3, 2, 2, rng);
  Matrix coeffs[3];
  for (auto& c : coeffs) c = Matrix::randn(2, 3, 1.0f, rng);

  auto loss = [&] {
    const Sequence out = lstm.forward(input, false);
    double total = 0.0;
    for (std::size_t t = 0; t < out.size(); ++t) {
      for (std::size_t i = 0; i < out[t].size(); ++i) {
        total += static_cast<double>(out[t].flat()[i]) * coeffs[t].flat()[i];
      }
    }
    return total;
  };

  lstm.zero_grad();
  (void)lstm.forward(input, false);
  Sequence dout = {coeffs[0], coeffs[1], coeffs[2]};
  (void)lstm.backward(dout);
  expect_grad_matches(lstm.w_ih(), *lstm.gradients()[0], loss);
  expect_grad_matches(lstm.w_hh(), *lstm.gradients()[1], loss);
}

TEST(Lstm, BackwardWithoutForwardThrows) {
  Rng rng(9);
  Lstm lstm(2, 2, rng);
  Sequence dout(1, Matrix(1, 2, 1.0f));
  EXPECT_THROW((void)lstm.backward(dout), std::invalid_argument);
}

TEST(Lstm, ForgetGateBiasInitializedToOne) {
  Rng rng(10);
  Lstm lstm(3, 4, rng);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(lstm.bias()(0, 4 + j), 1.0f);   // forget block
    EXPECT_FLOAT_EQ(lstm.bias()(0, j), 0.0f);       // input block
  }
}

TEST(Lstm, CloneProducesIndependentCopy) {
  Rng rng(11);
  Lstm lstm(3, 4, rng);
  lstm.set_trainable(false);
  auto clone_ptr = lstm.clone();
  auto* clone = dynamic_cast<Lstm*>(clone_ptr.get());
  ASSERT_NE(clone, nullptr);
  EXPECT_FALSE(clone->trainable());

  Rng data_rng(12);
  const Sequence input = random_sequence(2, 3, 3, data_rng);
  EXPECT_EQ(lstm.forward(input, false).back(),
            clone->forward(input, false).back());

  clone->w_ih()(0, 0) += 1.0f;  // mutate the clone only
  EXPECT_NE(lstm.forward(input, false).back(),
            clone->forward(input, false).back());
}

TEST(Lstm, SaveLoadRoundTrip) {
  Rng rng(13);
  Lstm lstm(4, 5, rng);
  const auto path =
      std::filesystem::temp_directory_path() / "pelican_lstm_test.bin";
  {
    BinaryWriter writer(path, 1);
    lstm.save(writer);
    writer.finish();
  }
  BinaryReader reader(path, 1);
  ASSERT_EQ(reader.read_string(), "lstm");
  auto loaded = Lstm::load(reader);
  std::filesystem::remove(path);

  Rng data_rng(14);
  const Sequence input = random_sequence(3, 2, 4, data_rng);
  EXPECT_EQ(lstm.forward(input, false).back(),
            loaded->forward(input, false).back());
}

TEST(Lstm, StatefulAcrossStepsNotAcrossCalls) {
  Rng rng(15);
  Lstm lstm(2, 3, rng);
  const Sequence input = random_sequence(2, 1, 2, rng);
  const Matrix first = lstm.forward(input, false).back();
  const Matrix second = lstm.forward(input, false).back();
  EXPECT_EQ(first, second);  // state resets between forward calls
}

}  // namespace
}  // namespace pelican::nn
