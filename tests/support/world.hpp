// Shared miniature world for module/integration tests: a small campus, a
// handful of simulated users, and (lazily, cached per test binary) a trained
// general model plus one personalized model. Training happens once; all
// suites in the binary reuse the result, keeping ctest fast.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "mobility/campus.hpp"
#include "mobility/dataset.hpp"
#include "models/window_dataset.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "models/general.hpp"
#include "models/personalize.hpp"

namespace pelican::testing {

struct World {
  mobility::Campus campus;
  mobility::EncodingSpec spec;  // building level
  std::vector<mobility::Persona> contributor_personas;
  std::vector<mobility::Trajectory> contributor_trajectories;
  std::vector<mobility::Persona> user_personas;
  std::vector<mobility::Trajectory> user_trajectories;
  std::unique_ptr<models::WindowDataset> general_train;
  nn::SequenceClassifier general_model;
  // Personalized (TL FE) model for user 0 plus its train/test windows.
  nn::SequenceClassifier personal_model;
  std::vector<mobility::Window> user0_train;
  std::vector<mobility::Window> user0_test;
};

inline mobility::CampusConfig small_campus_config() {
  mobility::CampusConfig config;
  config.buildings = 12;
  config.mean_aps_per_building = 4;
  return config;
}

/// Simulated world without any trained models (cheap).
inline World make_untrained_world(int weeks = 4, std::size_t contributors = 4,
                                  std::size_t users = 2) {
  World world;
  world.campus = mobility::Campus::generate(small_campus_config(), 99);
  world.spec = mobility::EncodingSpec::for_campus(
      world.campus, mobility::SpatialLevel::kBuilding);

  Rng rng(1234);
  const mobility::PersonaConfig persona_config;
  const mobility::SimulationConfig sim_config{.weeks = weeks};

  for (std::size_t u = 0; u < contributors + users; ++u) {
    Rng user_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        world.campus, static_cast<std::uint32_t>(u), persona_config,
        user_rng);
    auto trajectory = mobility::simulate(world.campus, persona, sim_config,
                                         rng.fork(1000 + u));
    if (u < contributors) {
      world.contributor_personas.push_back(persona);
      world.contributor_trajectories.push_back(std::move(trajectory));
    } else {
      world.user_personas.push_back(persona);
      world.user_trajectories.push_back(std::move(trajectory));
    }
  }
  return world;
}

/// Fully trained world (general + TL FE personalized model for user 0).
/// Built once per process.
inline const World& trained_world() {
  static const World world = [] {
    World w = make_untrained_world(/*weeks=*/5, /*contributors=*/4,
                                   /*users=*/2);
    // Pool contributor windows for the general model.
    std::vector<mobility::Window> pooled;
    for (const auto& trajectory : w.contributor_trajectories) {
      const auto windows =
          mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
      pooled.insert(pooled.end(), windows.begin(), windows.end());
    }
    w.general_train =
        std::make_unique<models::WindowDataset>(std::move(pooled), w.spec);

    models::GeneralModelConfig general_config;
    general_config.hidden_dim = 24;
    general_config.train.epochs = 6;
    general_config.train.batch_size = 64;
    general_config.train.lr = 3e-3;  // tiny model: faster lr than paper scale
    general_config.seed = 7;
    w.general_model =
        models::train_general_model(*w.general_train, general_config).model;

    // Personalize for user 0 with TL feature extraction.
    const auto windows = mobility::make_windows(
        w.user_trajectories[0], mobility::SpatialLevel::kBuilding);
    auto split = mobility::split_windows(windows, 0.8);
    w.user0_train = std::move(split.train);
    w.user0_test = std::move(split.test);

    models::PersonalizationConfig personal_config;
    personal_config.method = models::PersonalizationMethod::kFeatureExtraction;
    personal_config.train.epochs = 8;
    personal_config.train.batch_size = 32;
    personal_config.train.lr = 3e-3;
    personal_config.seed = 11;
    const models::WindowDataset user_data(w.user0_train, w.spec);
    w.personal_model =
        models::personalize(w.general_model, user_data, personal_config)
            .model;
    return w;
  }();
  return world;
}

}  // namespace pelican::testing
