// Acceptance (b): a publish routed through the router lands on the OWNING
// process only, becomes visible fleet-wide (every subsequent routed query,
// from any client, serves the new version), and under concurrent traffic
// there are zero torn reads — the publish_under_load pattern, one tier up.
//
// Client threads hammer the router for a target user (and a control user)
// while the main thread live-publishes alternating versions through the
// router; every routed response must match exactly version 1's or version
// 2's reference output for its window.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "router/router.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

TEST(RouterPublishTest, PublishIsFleetVisibleWithZeroTornReads) {
  constexpr std::uint32_t kUsers = 8;
  constexpr std::uint32_t kTarget = 0;
  constexpr std::uint32_t kControl = 1;

  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kUsers, /*versions=*/2);
  const auto fleet = rt::start_fleet(dir, /*processes=*/2);

  Router router;
  (void)router.add_backend(fleet[0]->address().to_string());
  (void)router.add_backend(fleet[1]->address().to_string());
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    router.deploy(user, /*version=*/1, tiny_spec(),
                  rt::temperature_of(user));
  }

  // Reference outputs per window for both versions of the target and for
  // the control user's v1.
  Rng rng(7);
  std::vector<mobility::Window> windows;
  std::vector<std::vector<std::uint16_t>> expect_v1, expect_v2, expect_ctl;
  {
    auto v1 = rt::reference_deployment(kTarget, 1);
    auto v2 = rt::reference_deployment(kTarget, 2);
    auto control = rt::reference_deployment(kControl, 1);
    for (std::size_t i = 0; i < 8; ++i) {
      windows.push_back(random_window(rng));
      expect_v1.push_back(v1.predict_top_k(windows.back(), 3));
      expect_v2.push_back(v2.predict_top_k(windows.back(), 3));
      expect_ctl.push_back(control.predict_top_k(windows.back(), 3));
    }
  }
  // The two versions must actually disagree somewhere, or "torn read"
  // would be unobservable.
  ASSERT_NE(expect_v1, expect_v2);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  std::atomic<std::size_t> control_wrong{0};
  std::atomic<std::size_t> served{0};

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::size_t i = c;  // interleave windows across clients
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t idx = i++ % windows.size();
        std::vector<serve::PredictRequest> batch = {
            {kTarget, windows[idx], 3}, {kControl, windows[idx], 3}};
        const auto responses = router.serve(batch);
        if (responses[0].ok) {
          // Zero torn reads: the routed answer is exactly one consistent
          // version's output — and the version tag must agree with it.
          const bool is_v1 = responses[0].locations == expect_v1[idx] &&
                             responses[0].model_version == 1;
          const bool is_v2 = responses[0].locations == expect_v2[idx] &&
                             responses[0].model_version == 2;
          if (!is_v1 && !is_v2) torn.fetch_add(1);
          served.fetch_add(1);
        }
        if (responses[1].ok && responses[1].locations != expect_ctl[idx]) {
          control_wrong.fetch_add(1);
        }
      }
    });
  }

  // Live-publish alternating versions through the router while traffic is
  // in flight, ending on v2. Each round waits for a few served responses
  // before the next publish, so traffic provably interleaves the updates
  // regardless of scheduling (on a loaded machine all five publishes can
  // otherwise finish before any client completes one round trip).
  for (std::uint32_t round = 0; round < 5; ++round) {
    router.publish(kTarget, round % 2 == 0 ? 2u : 1u);
    const std::size_t target_count = served.load() + 5;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (served.load() < target_count &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop.store(true);
  for (auto& client : clients) client.join();

  EXPECT_EQ(torn.load(), 0u)
      << "every routed response must match one consistent model version";
  EXPECT_EQ(control_wrong.load(), 0u)
      << "publishes for one user must never change another user's answers";
  EXPECT_GT(served.load(), 0u);

  // Fleet-wide visibility: after the final publish, EVERY subsequent
  // routed query — whichever client, whichever window — serves v2.
  for (std::size_t idx = 0; idx < windows.size(); ++idx) {
    const auto after = router.serve(std::vector<serve::PredictRequest>{
        {kTarget, windows[idx], 3}});
    ASSERT_TRUE(after[0].ok);
    EXPECT_EQ(after[0].model_version, 2u);
    EXPECT_EQ(after[0].locations, expect_v2[idx]);
  }

  // The publish was routed, not broadcast: exactly one engine hosts the
  // target (deployments total = kUsers across the fleet, none doubled).
  std::uint64_t deployments = 0;
  for (const auto& [address, health] : router.fleet_health()) {
    deployments += health.deployments;
  }
  EXPECT_EQ(deployments, kUsers);
}

}  // namespace
}  // namespace pelican::router
