// Acceptance: the flight recorder tells the story of a stalled engine.
//
// A live 2-process fleet; engine 0's predict handler stalls via a seeded
// PELICAN_FAULT in that child's environment (the chaos_test scenario). A
// FlightRecorder samples Router::fleet_metrics() at 50ms over the whole
// incident. Afterwards the recorder — not the test's privileged access to
// router internals — must show:
//
//   - /timeseries: a hedge-rate spike while the stall was being masked;
//   - /events: a quarantine event whose trace id resolves to a recorded
//     span journal trace, and an unquarantine (recovery) event once the
//     hold-down expires and the prober folds the engine back in;
//   - /slo: a burn-rate objective with a 10s window breaching during the
//     stall and recovering after (multi-window: the short window clears);
//   - all of it served over real HTTP GETs against the exposition server.
//
// When PELICAN_FLIGHT_DUMP is set, the full /flight JSON is written there
// — the CI chaos lane uploads it and tools/bench_diff.py renders the
// event timeline from it.
#include "router/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "router/router.hpp"
#include "router/socket.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

/// One-shot HTTP exchange against the exposition server.
std::string http_get(const Address& address, const std::string& path) {
  Socket socket = Socket::connect_to(address);
  socket.send_bytes("GET " + path + " HTTP/1.1\r\nHost: recorder\r\n\r\n");
  std::string response;
  char buffer[4096];
  for (;;) {
    const std::size_t got = socket.recv_some(buffer, sizeof(buffer));
    if (got == 0) break;
    response.append(buffer, got);
  }
  return response;
}

std::string body_of(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// Polls `predicate` every 50ms for up to `timeout`.
template <typename Predicate>
bool eventually(Predicate predicate, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return predicate();
}

bool has_event(const std::vector<obs::Event>& events, obs::EventType type) {
  return std::any_of(
      events.begin(), events.end(),
      [type](const obs::Event& event) { return event.type == type; });
}

TEST(FlightRecorderAcceptanceTest, StalledEngineIncidentIsFullyRecorded) {
  constexpr std::uint32_t kUsers = 24;
  constexpr double kDeadlineMs = 10000.0;
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kUsers, /*versions=*/1);

  // Engine 0 stalls predicts only — health, deploy, and drain answer, so
  // the hedge/quarantine machinery (not dead-engine detection) must act.
  rt::EngineProcesses engines;
  ASSERT_GT(engines.spawn(dir, 0,
                          {{"PELICAN_FAULT",
                            "seed=42;rule=site:engine.handle.predict_batch,"
                            "action:stall,ms:30000"}}),
            0);
  ASSERT_GT(engines.spawn(dir, 1), 0);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(rt::wait_connectable(dir.socket_address(i)));
  }

  RouterConfig config;
  config.hedge_delay_ms = 50.0;        // pinned: no p99 history yet
  config.hedge_budget_fraction = 1.0;  // the budget must not gate this test
  config.request_timeout_ms = 2000.0;
  // SHORT hold-down, unlike chaos_test: this test wants the recovery —
  // the prober folds engine 0 back in (its health verb answers fine) and
  // the journal must show the unquarantine transition.
  config.quarantine_holddown_ms = 1500.0;
  Router router(config);
  (void)router.add_backend(dir.socket_address(0));
  (void)router.add_backend(dir.socket_address(1));
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }

  // The flight recorder over the live fleet: 50ms sampling, an HTTP
  // endpoint on the fleet's transport, and one burn-rate objective on the
  // derived hedge-rate series. target=0: ANY hedging in an interval is a
  // bad sample; budget 5%; breach only when BOTH the 2s and the 10s
  // window burn — and recovery as soon as the short window clears.
  FlightRecorderConfig recorder_config;
  recorder_config.sample_interval_ms = 50.0;
  recorder_config.series_capacity = 2048;
  recorder_config.http_listen = dir.socket_address(9);
  obs::SloSpec slo;
  slo.name = "hedge-rate";
  slo.series = "router_hedges_total_rate";
  slo.target = 0.0;
  slo.budget_fraction = 0.05;
  slo.windows_s = {2.0, 10.0};
  slo.burn_threshold = 1.0;
  recorder_config.slos.push_back(slo);
  FlightRecorder recorder(router, recorder_config);
  recorder.start();

  // --- The incident: serve until the stalled engine is quarantined ------
  Rng rng(29);
  std::vector<serve::PredictRequest> requests;
  std::vector<std::vector<std::uint16_t>> expected;
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    serve::PredictRequest request{user, random_window(rng), 3};
    request.deadline_ms = kDeadlineMs;
    requests.push_back(request);
    expected.push_back(
        rt::reference_deployment(user, 1).predict_top_k(request.window, 3));
  }
  bool quarantined = false;
  for (int pass = 0; pass < 12 && !quarantined; ++pass) {
    const auto responses = router.serve(requests);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok)
          << "pass " << pass << ", user " << requests[i].user_id;
      EXPECT_EQ(responses[i].locations, expected[i])
          << "the incident must never change served bits (pass " << pass
          << ")";
    }
    quarantined = !router.quarantined_backends().empty();
  }
  ASSERT_TRUE(quarantined) << "the stalled engine was never quarantined";

  // The SLO breaches while the hedging is (or just was) hot: the sampler
  // re-judges every 50ms, so give it a moment to observe the spike.
  ASSERT_TRUE(eventually(
      [&] { return has_event(recorder.events(), obs::EventType::kSloBreach); },
      std::chrono::seconds(5)))
      << "hedge-rate SLO never reported a burn-rate breach";

  // --- Recovery: hold-down expires, the prober folds engine 0 back ------
  ASSERT_TRUE(eventually(
      [&] {
        return has_event(recorder.events(), obs::EventType::kUnquarantine);
      },
      std::chrono::seconds(10)))
      << "the recovery prober never unquarantined the stalled engine";
  ASSERT_TRUE(eventually(
      [&] {
        return has_event(recorder.events(), obs::EventType::kSloRecovered);
      },
      std::chrono::seconds(10)))
      << "the hedge-rate SLO never recovered after the incident";

  // --- The recorder's own story, via its public surface ------------------
  // Hedge-rate spike in the time series.
  const auto hedge_rate = recorder.store().series("router_hedges_total_rate");
  ASSERT_FALSE(hedge_rate.empty());
  EXPECT_TRUE(std::any_of(
      hedge_rate.begin(), hedge_rate.end(),
      [](const obs::SeriesPoint& point) { return point.value > 0.0; }))
      << "the masked stall must appear as a hedge-rate spike";

  // Quarantine event whose trace id resolves into the span journal.
  const std::vector<obs::Event> events = recorder.events();
  ASSERT_TRUE(has_event(events, obs::EventType::kQuarantine));
  std::uint64_t quarantine_trace = 0;
  for (const obs::Event& event : events) {
    if (event.type == obs::EventType::kQuarantine && event.trace_id != 0) {
      quarantine_trace = event.trace_id;
      EXPECT_EQ(event.subject, dir.socket_address(0));
      EXPECT_EQ(event.source, "router");
    }
  }
  ASSERT_NE(quarantine_trace, 0u)
      << "quarantine events must carry the triggering request's trace id";
  const auto fleet = router.fleet_metrics();
  EXPECT_TRUE(std::any_of(fleet.traces.begin(), fleet.traces.end(),
                          [&](const obs::TraceRecord& rec) {
                            return rec.trace_id == quarantine_trace;
                          }))
      << "the quarantine trace id must resolve to recorded spans";

  // --- The same story over real HTTP -------------------------------------
  const Address& http = recorder.http_address();
  EXPECT_EQ(body_of(http_get(http, "/healthz")), "ok\n");
  const std::string metrics = body_of(http_get(http, "/metrics"));
  EXPECT_NE(metrics.find("pelican_router_hedges_total"), std::string::npos);
  const std::string timeseries = body_of(http_get(http, "/timeseries"));
  EXPECT_NE(timeseries.find("\"router_hedges_total_rate\""),
            std::string::npos);
  const std::string events_http = body_of(http_get(http, "/events"));
  EXPECT_NE(events_http.find("\"type\":\"quarantine\""), std::string::npos);
  EXPECT_NE(events_http.find("\"type\":\"unquarantine\""),
            std::string::npos);
  const std::string slos = body_of(http_get(http, "/slo"));
  EXPECT_NE(slos.find("\"name\":\"hedge-rate\""), std::string::npos);
  EXPECT_NE(slos.find("\"breached\":"), std::string::npos);
  EXPECT_EQ(http_get(http, "/nope").find("HTTP/1.1 404"), 0u);

  // --- Artifact for the CI chaos lane ------------------------------------
  if (const char* dump_path = std::getenv("PELICAN_FLIGHT_DUMP")) {
    std::ofstream dump(dump_path, std::ios::trunc);
    ASSERT_TRUE(dump.is_open()) << dump_path;
    dump << recorder.flight_dump_json() << "\n";
  }

  recorder.stop();
  router.drain_fleet();
  EXPECT_EQ(engines.reap(1), 0) << "the healthy engine must exit cleanly";
}

}  // namespace
}  // namespace pelican::router
