// Wire protocol: every message round-trips bit-exactly, and malformed
// frames (wrong verb, trailing bytes, truncation, hostile length prefixes)
// throw SerializeError instead of decoding garbage.
#include "router/wire.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "serve/serve_support.hpp"

namespace pelican::router {
namespace {

using pelican::serve_testing::random_window;

TEST(WireTest, PredictBatchRoundTrips) {
  Rng rng(11);
  std::vector<serve::PredictRequest> requests;
  for (std::uint32_t i = 0; i < 5; ++i) {
    requests.push_back({1000 + i, random_window(rng), 3 + i});
    requests.back().trace_id = i == 0 ? 0 : 0xABCD000000000000ULL + i;
  }
  const auto frame = encode_predict_batch(requests);
  EXPECT_EQ(frame_verb(frame), Verb::kPredictBatch);

  const auto decoded = decode_predict_batch(frame);
  ASSERT_EQ(decoded.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(decoded[i].user_id, requests[i].user_id);
    EXPECT_EQ(decoded[i].k, requests[i].k);
    EXPECT_EQ(decoded[i].trace_id, requests[i].trace_id)
        << "the trace id must ride the frame so one trace spans processes";
    EXPECT_EQ(decoded[i].window, requests[i].window)
        << "windows carry discretized features; the wire must not touch them";
  }
}

TEST(WireTest, PredictFrameVersionMismatchThrows) {
  // Frame versioning is deliberate: PR 7 changed the predict frame layout
  // (trace ids) and the stats reply (histogram state), so a v1 peer must
  // fail loudly, not decode garbage.
  Rng rng(12);
  auto frame = encode_predict_batch(
      std::vector<serve::PredictRequest>{{1, random_window(rng), 3}});
  frame[1] = kPredictFrameVersion - 1;  // version byte follows the verb
  EXPECT_THROW((void)decode_predict_batch(frame), SerializeError);

  auto stats_frame = encode_stats_reply(serve::ServerStats().state());
  stats_frame[1] = kStatsFrameVersion + 1;
  EXPECT_THROW((void)decode_stats_reply(stats_frame), SerializeError);
}

TEST(WireTest, PredictRepliesRoundTrip) {
  std::vector<serve::PredictResponse> responses(3);
  responses[0] = {7, true, false, 2, {3, 1, 4}, 0.125};
  responses[1] = {8, false, true, 0, {}, 99.5};
  responses[2] = {9, false, false, 1, {}, 0.0};

  const auto decoded = decode_predict_replies(encode_predict_replies(responses));
  ASSERT_EQ(decoded.size(), responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(decoded[i].user_id, responses[i].user_id);
    EXPECT_EQ(decoded[i].ok, responses[i].ok);
    EXPECT_EQ(decoded[i].rejected, responses[i].rejected);
    EXPECT_EQ(decoded[i].model_version, responses[i].model_version);
    EXPECT_EQ(decoded[i].locations, responses[i].locations);
    EXPECT_DOUBLE_EQ(decoded[i].latency_ms, responses[i].latency_ms);
  }
}

TEST(WireTest, AdminMessagesRoundTrip) {
  const DeployCommand deploy{42, 3, 5.0,
                             {mobility::SpatialLevel::kAp, 150}};
  const auto d = decode_deploy(encode_deploy(deploy));
  EXPECT_EQ(d.user_id, deploy.user_id);
  EXPECT_EQ(d.version, deploy.version);
  EXPECT_DOUBLE_EQ(d.temperature, deploy.temperature);
  EXPECT_EQ(d.spec, deploy.spec);

  const auto p = decode_publish(encode_publish({7, 9}));
  EXPECT_EQ(p.user_id, 7u);
  EXPECT_EQ(p.version, 9u);

  const auto ack = decode_ack(encode_ack({false, "no such version"}));
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(ack.message, "no such version");

  const auto health = decode_health_reply(encode_health_reply({12, true}));
  EXPECT_EQ(health.deployments, 12u);
  EXPECT_TRUE(health.draining);

  EXPECT_EQ(frame_verb(encode_health()), Verb::kHealth);
  EXPECT_EQ(frame_verb(encode_stats()), Verb::kStats);
  EXPECT_EQ(frame_verb(encode_drain()), Verb::kDrain);
}

TEST(WireTest, StatsStateRoundTripsExactly) {
  serve::ServerStats stats;
  stats.record_batch(4, 0.25);
  stats.record_batch(16, 1.5);
  stats.record_request(3.75);
  stats.record_request(0.5);
  stats.record_rejected();
  stats.record_shed();
  stats.record_queue_depth(9);
  const auto state = stats.state();

  const auto decoded = decode_stats_reply(encode_stats_reply(state));
  EXPECT_EQ(decoded.requests, state.requests);
  EXPECT_EQ(decoded.rejected, state.rejected);
  EXPECT_EQ(decoded.shed, state.shed);
  EXPECT_EQ(decoded.peak_queue_depth, state.peak_queue_depth);
  EXPECT_EQ(decoded.batches, state.batches);
  EXPECT_EQ(decoded.batch_rows, state.batch_rows);
  EXPECT_EQ(decoded.max_batch, state.max_batch);
  EXPECT_EQ(decoded.batch_hist, state.batch_hist);
  EXPECT_DOUBLE_EQ(decoded.forward_seconds, state.forward_seconds);
  EXPECT_EQ(decoded.latency.count, state.latency.count);
  EXPECT_DOUBLE_EQ(decoded.latency.sum, state.latency.sum);
  EXPECT_DOUBLE_EQ(decoded.latency.max, state.latency.max);
  EXPECT_EQ(decoded.latency.buckets, state.latency.buckets)
      << "histogram buckets cross the wire bit-exactly so fleet merges "
         "equal bucket-wise sums";
}

TEST(WireTest, MetricsReplyRoundTrips) {
  EngineMetricsReport report;
  serve::ServerStats stats;
  stats.record_request(1.5);
  stats.record_batch(8, 0.125);
  report.stats = stats.state();

  obs::Registry registry;
  registry.counter("requests_total").add(17);
  auto& hist = registry.histogram("stage_forward_ms");
  hist.observe(0.25);
  hist.observe(3.5);
  hist.observe(1e-9);  // underflow bucket
  report.registry = registry.state();

  obs::TraceRecord rec;
  rec.trace_id = 0xDEADBEEFULL;
  rec.total_ms = 7.5;
  rec.source = "unix:/tmp/e0.sock";
  rec.spans.push_back({obs::Stage::kForward, 100, 250});
  rec.spans.push_back({obs::Stage::kQueueWait, 10, 90});
  report.traces.push_back(rec);

  const auto decoded = decode_metrics_reply(encode_metrics_reply(report));
  EXPECT_EQ(decoded.stats.requests, report.stats.requests);
  EXPECT_EQ(decoded.stats.latency.buckets, report.stats.latency.buckets);
  ASSERT_EQ(decoded.registry.counters.size(), 1u);
  EXPECT_EQ(decoded.registry.counters[0].first, "requests_total");
  EXPECT_EQ(decoded.registry.counters[0].second, 17u);
  ASSERT_EQ(decoded.registry.histograms.size(), 1u);
  EXPECT_EQ(decoded.registry.histograms[0].first, "stage_forward_ms");
  EXPECT_EQ(decoded.registry.histograms[0].second.buckets,
            report.registry.histograms[0].second.buckets);
  ASSERT_EQ(decoded.traces.size(), 1u);
  EXPECT_EQ(decoded.traces[0].trace_id, rec.trace_id);
  EXPECT_DOUBLE_EQ(decoded.traces[0].total_ms, rec.total_ms);
  EXPECT_EQ(decoded.traces[0].source, rec.source);
  ASSERT_EQ(decoded.traces[0].spans.size(), 2u);
  EXPECT_EQ(decoded.traces[0].spans[0].stage, obs::Stage::kForward);
  EXPECT_EQ(decoded.traces[0].spans[0].start_ns, 100u);
  EXPECT_EQ(decoded.traces[0].spans[0].duration_ns, 250u);

  EXPECT_EQ(frame_verb(encode_metrics()), Verb::kMetrics);
}

TEST(WireTest, RejectsMalformedFrames) {
  EXPECT_THROW((void)frame_verb({}), SerializeError);

  const std::vector<std::uint8_t> bad_verb = {0xEE};
  EXPECT_THROW((void)frame_verb(bad_verb), SerializeError);

  // Wrong verb for the decoder.
  EXPECT_THROW((void)decode_ack(encode_health()), SerializeError);
  EXPECT_THROW((void)decode_predict_batch(encode_drain()), SerializeError);

  // Trailing bytes: peers disagree about the layout.
  auto frame = encode_publish({1, 2});
  frame.push_back(0);
  EXPECT_THROW((void)decode_publish(frame), SerializeError);

  // Truncated body.
  auto short_frame = encode_publish({1, 2});
  short_frame.pop_back();
  EXPECT_THROW((void)decode_publish(short_frame), SerializeError);

  // Hostile batch count (larger than the frame itself).
  BufferWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(Verb::kPredictBatch));
  writer.write_u8(kPredictFrameVersion);
  writer.write_u64(std::uint64_t{1} << 40);
  EXPECT_THROW((void)decode_predict_batch(writer.buffer()), SerializeError);

  // Out-of-domain spatial level in a deploy.
  auto deploy = encode_deploy({1, 1, 1.0, {mobility::SpatialLevel::kAp, 9}});
  deploy[deploy.size() - 9] = 7;  // the level byte sits before num_locations
  EXPECT_THROW((void)decode_deploy(deploy), SerializeError);
}

}  // namespace
}  // namespace pelican::router
