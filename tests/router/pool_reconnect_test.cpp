// Satellite (a): pooled connections that broke while parked are replaced
// transparently. An engine restart resets every connection the router has
// pooled to it (EPIPE/ECONNRESET on first reuse); the next exchange must
// retry once on a fresh connection instead of declaring the backend dead —
// the backend is fine, only the parked socket rotted.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "router/engine_worker.hpp"
#include "router/router.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

TEST(PoolReconnectTest, EngineRestartDoesNotKillTheBackend) {
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), /*users=*/4, /*versions=*/1);

  auto engine = std::make_unique<EngineWorker>(rt::engine_config(dir, 0));
  engine->start();

  RouterConfig config;
  config.hedge_delay_ms = -1.0;  // isolate the reconnect path
  Router router(config);
  ASSERT_GT(router.add_backend(dir.socket_address(0)), 0u);
  for (std::uint32_t user = 0; user < 4; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }

  // A served pass parks at least one connection in the pool.
  Rng rng(3);
  std::vector<serve::PredictRequest> requests;
  for (std::uint32_t user = 0; user < 4; ++user) {
    requests.push_back({user, random_window(rng), 3});
  }
  const auto before = router.serve(requests);
  for (const auto& response : before) ASSERT_TRUE(response.ok);

  // Restart the engine on the same address: every pooled connection is now
  // dead, the backend is not. (Destroy first — the old worker's listener
  // unlinks the socket path on close, which must not race the new bind.)
  engine.reset();
  engine = std::make_unique<EngineWorker>(rt::engine_config(dir, 0));
  engine->start();

  // The next fleet pull hits the rotten pooled socket; the exchange must
  // reconnect transparently rather than fail the backend over.
  const auto health = router.fleet_health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].first, dir.socket_address(0));

  EXPECT_GE(router.metrics().counter("router_pool_reconnects_total").value(),
            1u);
  EXPECT_EQ(router.live_backends().size(), 1u)
      << "a rotten pooled socket must not be treated as a dead backend";
  EXPECT_TRUE(router.quarantined_backends().empty());

  // The restarted engine lost its registry; the router's ledger still knows
  // every deployment, so re-deploying and serving works over the refreshed
  // pool.
  for (std::uint32_t user = 0; user < 4; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }
  const auto after = router.serve(requests);
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_TRUE(after[i].ok);
    EXPECT_EQ(after[i].locations, before[i].locations)
        << "same store artifact, same bits, across the engine restart";
  }
}

}  // namespace
}  // namespace pelican::router
