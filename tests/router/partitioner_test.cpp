// Partitioner: deterministic ownership tables and the bounded-movement
// guarantee of consistent hashing — membership changes move exactly the
// departed/arrived backend's partitions and nothing else.
#include "router/partitioner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace pelican::router {
namespace {

constexpr std::size_t kPartitions = 128;

std::vector<std::string> four_backends() {
  return {"unix:/tmp/f/e0.sock", "unix:/tmp/f/e1.sock", "unix:/tmp/f/e2.sock",
          "unix:/tmp/f/e3.sock"};
}

Partitioner build(const std::vector<std::string>& ids) {
  Partitioner partitioner(kPartitions);
  for (const auto& id : ids) (void)partitioner.add_backend(id);
  return partitioner;
}

TEST(PartitionerTest, RejectsDegenerateConfigs) {
  EXPECT_THROW(Partitioner(0), std::invalid_argument);
  EXPECT_THROW(Partitioner(8, 0), std::invalid_argument);
  Partitioner partitioner(8);
  EXPECT_THROW(partitioner.add_backend(""), std::invalid_argument);
  EXPECT_THROW((void)partitioner.owner_of(1), std::logic_error)
      << "owner lookups require at least one backend";
}

TEST(PartitionerTest, EveryPartitionGetsAnOwnerAndTableIsDeterministic) {
  const auto a = build(four_backends());
  const auto b = build(four_backends());
  EXPECT_EQ(a.ownership(), b.ownership())
      << "same membership must yield the same table, always";
  std::set<std::string> owners(a.ownership().begin(), a.ownership().end());
  EXPECT_EQ(owners.size(), 4u) << "every backend should own some partitions";
  for (const auto& owner : a.ownership()) EXPECT_FALSE(owner.empty());
  EXPECT_EQ(a.backends(), four_backends());
  EXPECT_EQ(a.backend_count(), 4u);
}

TEST(PartitionerTest, RegistrationOrderDoesNotMatter) {
  auto ids = four_backends();
  const auto forward = build(ids);
  std::reverse(ids.begin(), ids.end());
  const auto backward = build(ids);
  EXPECT_EQ(forward.ownership(), backward.ownership());
}

TEST(PartitionerTest, UserToPartitionIsStableAcrossMembership) {
  Partitioner partitioner(kPartitions);
  const std::size_t before = partitioner.partition_of(1234);
  (void)partitioner.add_backend("a");
  (void)partitioner.add_backend("b");
  EXPECT_EQ(partitioner.partition_of(1234), before)
      << "membership must never change which partition a user hashes to";
}

TEST(PartitionerTest, RemovalMovesExactlyTheDeadBackendsPartitions) {
  auto partitioner = build(four_backends());
  const auto before = partitioner.ownership();
  const std::string victim = four_backends()[2];

  std::size_t victim_owned = 0;
  for (const auto& owner : before) victim_owned += owner == victim ? 1 : 0;
  ASSERT_GT(victim_owned, 0u);

  const std::size_t moved = partitioner.remove_backend(victim);
  EXPECT_EQ(moved, victim_owned)
      << "consistent hashing: only the dead backend's slice moves";

  const auto& after = partitioner.ownership();
  for (std::size_t p = 0; p < kPartitions; ++p) {
    if (before[p] == victim) {
      EXPECT_NE(after[p], victim);
      EXPECT_FALSE(after[p].empty());
    } else {
      EXPECT_EQ(after[p], before[p])
          << "a surviving backend's partition must not move on removal";
    }
  }
  EXPECT_FALSE(partitioner.contains(victim));
  EXPECT_EQ(partitioner.remove_backend(victim), 0u) << "idempotent";
}

TEST(PartitionerTest, AdditionMovesOnlyPartitionsTheNewBackendCaptures) {
  auto partitioner = build(four_backends());
  const auto before = partitioner.ownership();

  const std::string joiner = "unix:/tmp/f/e4.sock";
  const std::size_t moved = partitioner.add_backend(joiner);

  const auto& after = partitioner.ownership();
  std::size_t captured = 0;
  for (std::size_t p = 0; p < kPartitions; ++p) {
    if (after[p] == joiner) {
      ++captured;
    } else {
      EXPECT_EQ(after[p], before[p])
          << "partitions not captured by the joiner must not move";
    }
  }
  EXPECT_EQ(moved, captured);
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kPartitions / 2)
      << "a single joiner of five must capture a bounded slice, not rehash "
         "the world";
  EXPECT_EQ(partitioner.add_backend(joiner), 0u) << "idempotent";
}

TEST(PartitionerTest, RemoveThenReaddRestoresTheOriginalTable) {
  auto partitioner = build(four_backends());
  const auto original = partitioner.ownership();
  const std::string bounced = four_backends()[1];
  (void)partitioner.remove_backend(bounced);
  (void)partitioner.add_backend(bounced);
  EXPECT_EQ(partitioner.ownership(), original)
      << "ring points are a pure function of the backend id";
}

TEST(PartitionerTest, OwnerOfFollowsTheTable) {
  const auto partitioner = build(four_backends());
  for (std::uint32_t user = 0; user < 500; ++user) {
    EXPECT_EQ(partitioner.owner_of(user),
              partitioner.ownership()[partitioner.partition_of(user)]);
  }
}

}  // namespace
}  // namespace pelican::router
