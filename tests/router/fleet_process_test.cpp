// Fleet smoke over real processes — the CI-labeled router_smoke target:
// two pelican_engined processes over Unix sockets, tiny traffic, a routed
// publish, fleet-wide stats, and a clean drain. Exercises the wire
// protocol end to end (socket framing, every verb, process lifecycle) on
// every commit.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "router/router.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

TEST(FleetProcessTest, TwoProcessFleetServesPublishesAndDrains) {
  constexpr std::uint32_t kUsers = 6;
  constexpr std::size_t kRequests = 64;
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kUsers, /*versions=*/2);

  rt::EngineProcesses engines;
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_GT(engines.spawn(dir, i), 0);
    ASSERT_TRUE(rt::wait_connectable(dir.socket_address(i)))
        << "engine " << i << " did not come up";
  }

  Router router;
  (void)router.add_backend(dir.socket_address(0));
  (void)router.add_backend(dir.socket_address(1));
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }

  // Tiny traffic: every response ok and bit-identical to the reference.
  Rng rng(2);
  std::vector<serve::PredictRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests.push_back(
        {static_cast<std::uint32_t>(rng.below(kUsers)), random_window(rng),
         3});
  }
  const auto responses = router.serve(requests);
  ASSERT_EQ(responses.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(responses[i].ok) << "request " << i;
    EXPECT_EQ(responses[i].model_version, 1u);
    auto reference = rt::reference_deployment(requests[i].user_id, 1);
    EXPECT_EQ(responses[i].locations,
              reference.predict_top_k(requests[i].window, 3));
  }

  // A routed publish is visible on the next query.
  router.publish(0, 2);
  const auto updated = router.serve(
      std::vector<serve::PredictRequest>{{0, random_window(rng), 3}});
  ASSERT_TRUE(updated[0].ok);
  EXPECT_EQ(updated[0].model_version, 2u);

  // Fleet stats merged across both processes account for all traffic.
  const auto snap = router.fleet_stats();
  EXPECT_EQ(snap.requests_served, kRequests + 1);
  EXPECT_GT(snap.p50_latency_ms, 0.0);

  const auto health = router.fleet_health();
  ASSERT_EQ(health.size(), 2u);
  std::uint64_t deployments = 0;
  for (const auto& [address, reply] : health) {
    EXPECT_FALSE(reply.draining);
    deployments += reply.deployments;
  }
  EXPECT_EQ(deployments, kUsers);

  // Drain: both processes ack and exit 0.
  router.drain_fleet();
  for (std::size_t i = 0; i < engines.size(); ++i) {
    EXPECT_EQ(engines.reap(i), 0);
  }
  EXPECT_TRUE(router.live_backends().empty());
}

TEST(FleetProcessTest, OneTraceSpansRouterAndBothEngineProcesses) {
  // PR 7 acceptance: a routed predict through a real 2-process fleet yields
  // ONE trace whose stage spans come from both sides of the wire, and the
  // fleet-merged stage histograms are exactly the bucket-wise sum of the
  // per-engine histograms.
  constexpr std::uint32_t kUsers = 8;
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kUsers, /*versions=*/1);

  rt::EngineProcesses engines;
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_GT(engines.spawn(dir, i), 0);
    ASSERT_TRUE(rt::wait_connectable(dir.socket_address(i)))
        << "engine " << i << " did not come up";
  }

  Router router;
  (void)router.add_backend(dir.socket_address(0));
  (void)router.add_backend(dir.socket_address(1));
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }
  // The traced batch must provably cross both processes, so find two users
  // with distinct owners. The ring hashes backend ADDRESSES, which embed
  // this test's pid (TempDir), so which users co-locate varies run to run —
  // with only kUsers candidates the search occasionally came up empty and
  // flaked. Scan a wide id range instead (the partitioner is a pure hash;
  // candidates need not be deployed yet) and deploy the pick on demand.
  std::uint32_t user_a = 0;
  std::uint32_t user_b = 0;
  const std::string owner_a = router.owner_of(user_a);
  for (std::uint32_t user = 1; user < 1024; ++user) {
    if (router.owner_of(user) != owner_a) {
      user_b = user;
      break;
    }
  }
  ASSERT_NE(router.owner_of(user_b), owner_a)
      << "partitioner parked 1024 consecutive users on one backend";
  if (user_b >= kUsers) {
    rt::put_model(dir.store_root(), user_b, 1);
    router.deploy(user_b, 1, tiny_spec(), rt::temperature_of(user_b));
  }

  // Stamp our own trace id (callers may): the router must preserve it, the
  // engines must record under it.
  const std::uint64_t trace = obs::new_trace_id();
  Rng rng(3);
  std::vector<serve::PredictRequest> requests;
  requests.push_back({user_a, random_window(rng), 3});
  requests.push_back({user_b, random_window(rng), 3});
  for (auto& request : requests) request.trace_id = trace;
  const auto responses = router.serve(requests);
  for (const auto& response : responses) ASSERT_TRUE(response.ok);

  const auto fleet = router.fleet_metrics();

  // One trace, records from three processes: both engines and the router.
  std::set<std::string> sources;
  std::set<obs::Stage> stages;
  for (const auto& rec : fleet.traces) {
    if (rec.trace_id != trace) continue;
    sources.insert(rec.source);
    for (const auto& span : rec.spans) stages.insert(span.stage);
  }
  EXPECT_EQ(sources.size(), 3u)
      << "expected records from both engines and the router";
  EXPECT_TRUE(sources.contains("router"));
  EXPECT_GE(stages.size(), 6u) << "at least six named stages end to end";
  for (const obs::Stage stage :
       {obs::Stage::kQueueWait, obs::Stage::kEncode, obs::Stage::kForward,
        obs::Stage::kRankTopK, obs::Stage::kWireSerialize,
        obs::Stage::kRouterFanout}) {
    EXPECT_TRUE(stages.contains(stage))
        << "missing stage " << obs::to_string(stage);
  }

  // Exact merge: the fleet registry equals the bucket-wise fold of the raw
  // per-engine reports plus the router's own registry — computed here
  // independently with obs::merge_state over the same inputs.
  ASSERT_EQ(fleet.engines.size(), 2u);
  obs::RegistryState expected;
  for (const auto& [address, report] : fleet.engines) {
    obs::merge_state(expected, report.registry);
  }
  obs::merge_state(expected, router.metrics().state());
  ASSERT_EQ(fleet.registry.histograms.size(), expected.histograms.size());
  for (std::size_t h = 0; h < expected.histograms.size(); ++h) {
    EXPECT_EQ(fleet.registry.histograms[h].first,
              expected.histograms[h].first);
    EXPECT_EQ(fleet.registry.histograms[h].second.buckets,
              expected.histograms[h].second.buckets)
        << fleet.registry.histograms[h].first;
    EXPECT_EQ(fleet.registry.histograms[h].second.count,
              expected.histograms[h].second.count);
  }
  // And the engine-side histograms really saw this traffic: the forward
  // stage counted at least our two requests across the fleet.
  const auto forward = std::find_if(
      fleet.registry.histograms.begin(), fleet.registry.histograms.end(),
      [](const auto& entry) {
        return entry.first == obs::stage_metric_name(obs::Stage::kForward);
      });
  ASSERT_NE(forward, fleet.registry.histograms.end());
  EXPECT_GE(forward->second.count, 2u);

  router.drain_fleet();
  for (std::size_t i = 0; i < engines.size(); ++i) {
    EXPECT_EQ(engines.reap(i), 0);
  }
}

}  // namespace
}  // namespace pelican::router
