// Fleet smoke over real processes — the CI-labeled router_smoke target:
// two pelican_engined processes over Unix sockets, tiny traffic, a routed
// publish, fleet-wide stats, and a clean drain. Exercises the wire
// protocol end to end (socket framing, every verb, process lifecycle) on
// every commit.
#include <gtest/gtest.h>

#include <vector>

#include "router/router.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

TEST(FleetProcessTest, TwoProcessFleetServesPublishesAndDrains) {
  constexpr std::uint32_t kUsers = 6;
  constexpr std::size_t kRequests = 64;
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kUsers, /*versions=*/2);

  std::vector<pid_t> pids;
  for (std::size_t i = 0; i < 2; ++i) {
    const pid_t pid = rt::spawn_engined(dir, i);
    ASSERT_GT(pid, 0);
    pids.push_back(pid);
    ASSERT_TRUE(rt::wait_connectable(dir.socket_address(i)))
        << "engine " << i << " did not come up";
  }

  Router router;
  (void)router.add_backend(dir.socket_address(0));
  (void)router.add_backend(dir.socket_address(1));
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }

  // Tiny traffic: every response ok and bit-identical to the reference.
  Rng rng(2);
  std::vector<serve::PredictRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests.push_back(
        {static_cast<std::uint32_t>(rng.below(kUsers)), random_window(rng),
         3});
  }
  const auto responses = router.serve(requests);
  ASSERT_EQ(responses.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(responses[i].ok) << "request " << i;
    EXPECT_EQ(responses[i].model_version, 1u);
    auto reference = rt::reference_deployment(requests[i].user_id, 1);
    EXPECT_EQ(responses[i].locations,
              reference.predict_top_k(requests[i].window, 3));
  }

  // A routed publish is visible on the next query.
  router.publish(0, 2);
  const auto updated = router.serve(
      std::vector<serve::PredictRequest>{{0, random_window(rng), 3}});
  ASSERT_TRUE(updated[0].ok);
  EXPECT_EQ(updated[0].model_version, 2u);

  // Fleet stats merged across both processes account for all traffic.
  const auto snap = router.fleet_stats();
  EXPECT_EQ(snap.requests_served, kRequests + 1);
  EXPECT_GT(snap.p50_latency_ms, 0.0);

  const auto health = router.fleet_health();
  ASSERT_EQ(health.size(), 2u);
  std::uint64_t deployments = 0;
  for (const auto& [address, reply] : health) {
    EXPECT_FALSE(reply.draining);
    deployments += reply.deployments;
  }
  EXPECT_EQ(deployments, kUsers);

  // Drain: both processes ack and exit 0.
  router.drain_fleet();
  for (const pid_t pid : pids) {
    EXPECT_EQ(rt::reap_engined(pid), 0);
  }
  EXPECT_TRUE(router.live_backends().empty());
}

}  // namespace
}  // namespace pelican::router
