// Acceptance (a): responses served THROUGH the router — wire encode, engine
// process loop, scheduler, wire decode — are bit-identical to direct
// ServingEngine calls for the same user/queries.
//
// The fleet here is two in-process EngineWorkers over Unix sockets (the
// full wire path without fork/exec); the reference is (1) a direct
// single-process DeploymentRegistry + BatchScheduler over identical
// deployments and (2) raw DeployedModel::predict_top_k calls.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "router/router.hpp"
#include "router_support.hpp"
#include "serve/scheduler.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

TEST(RouterIdentityTest, RoutedResponsesMatchDirectEngineBitForBit) {
  constexpr std::uint32_t kStoredUsers = 64;
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kStoredUsers, /*versions=*/1);

  const auto fleet = rt::start_fleet(dir, /*processes=*/2);
  Router router;
  ASSERT_GT(router.add_backend(fleet[0]->address().to_string()), 0u);
  ASSERT_GT(router.add_backend(fleet[1]->address().to_string()), 0u);

  // Ownership depends on the (per-run) socket paths, so pick the query set
  // FROM the placement: up to 6 stored users per owning backend. With 64
  // users over both backends this covers each live engine in practice, and
  // the identity property holds regardless of the split.
  std::map<std::string, std::vector<std::uint32_t>> by_owner;
  for (std::uint32_t user = 0; user < kStoredUsers; ++user) {
    auto& slice = by_owner[router.owner_of(user)];
    if (slice.size() < 6) slice.push_back(user);
  }
  EXPECT_EQ(by_owner.size(), 2u)
      << "expected both engine processes to own some of 64 users";
  std::vector<std::uint32_t> users;
  for (const auto& [owner, slice] : by_owner) {
    users.insert(users.end(), slice.begin(), slice.end());
  }
  ASSERT_GE(users.size(), 6u);

  for (const std::uint32_t user : users) {
    router.deploy(user, /*version=*/1, tiny_spec(),
                  rt::temperature_of(user));
  }
  EXPECT_EQ(router.deployed_users(), users.size());

  // The direct reference engine: same deployments, no wire.
  serve::DeploymentRegistry direct_registry(4);
  for (const std::uint32_t user : users) {
    direct_registry.deploy(user, rt::reference_deployment(user, 1));
  }
  serve::BatchScheduler direct(direct_registry,
                               {.max_batch = 8,
                                .max_delay = std::chrono::microseconds(200)});

  Rng rng(42);
  std::vector<serve::PredictRequest> requests;
  for (const std::uint32_t user : users) {
    for (int repeat = 0; repeat < 4; ++repeat) {
      requests.push_back({user, random_window(rng), 3});
    }
  }

  const auto routed = router.serve(requests);
  const auto reference = direct.serve(requests);
  ASSERT_EQ(routed.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(routed[i].ok) << "request " << i;
    EXPECT_EQ(routed[i].user_id, requests[i].user_id);
    EXPECT_EQ(routed[i].model_version, 1u);
    EXPECT_EQ(routed[i].locations, reference[i].locations)
        << "routed top-k must be bit-identical to the direct engine "
           "(request "
        << i << ", user " << requests[i].user_id << ")";
  }

  // Second reference: raw single-query deployments, one per user.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto deployment = rt::reference_deployment(requests[i].user_id, 1);
    EXPECT_EQ(routed[i].locations,
              deployment.predict_top_k(requests[i].window, requests[i].k));
  }

  // An undeployed user is answered ok = false (admitted, nothing to serve),
  // exactly as the direct engine answers it — not a transport error.
  const auto unknown =
      router.serve(std::vector<serve::PredictRequest>{
          {kStoredUsers + 5, random_window(rng), 3}});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_FALSE(unknown[0].ok);
  EXPECT_FALSE(unknown[0].rejected);

  // Fleet stats observed every routed request, engine-side.
  const auto snap = router.fleet_stats();
  EXPECT_EQ(snap.requests_served, requests.size());
  EXPECT_EQ(snap.requests_rejected, 1u);
  EXPECT_GE(snap.batches_run, 1u);
}

TEST(RouterIdentityTest, DeployOfMissingVersionIsRefusedNotFatal) {
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), /*users=*/2, /*versions=*/1);
  const auto fleet = rt::start_fleet(dir, 1);
  Router router;
  (void)router.add_backend(fleet[0]->address().to_string());

  EXPECT_THROW(router.deploy(0, /*version=*/9, tiny_spec(), 1.0),
               std::runtime_error)
      << "the engine's store lookup failure must surface as a refusal";
  EXPECT_EQ(router.deployed_users(), 0u)
      << "a refused deploy must not linger in the failover ledger";

  // The fleet stays fully usable afterwards.
  router.deploy(0, 1, tiny_spec(), rt::temperature_of(0));
  Rng rng(3);
  const auto ok = router.serve(
      std::vector<serve::PredictRequest>{{0, random_window(rng), 3}});
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].ok);
}

TEST(RouterIdentityTest, AddBackendRejectsUnreachableAddress) {
  Router router;
  EXPECT_THROW((void)router.add_backend("unix:/tmp/plcn_no_such.sock"),
               WireError)
      << "a typo'd fleet config must fail at add, not at first serve";
  EXPECT_TRUE(router.live_backends().empty());
}

}  // namespace
}  // namespace pelican::router
