// Tail tolerance against HUNG (not dead) engines, in-process so the fault
// injector can be driven programmatically:
//
//   hedge        a stalled predict handler loses the race to a hedged
//                duplicate on the second engine — bit-identical answer,
//                no failover, hedge counters visible.
//   quarantine   an engine stalling predicts AND health probes is
//                quarantined (partitions move, users re-deploy) and the
//                serve call still answers within its own call; lifting the
//                fault lets the recovery prober fold the engine back in.
//   drain        drain_fleet() of a wedged engine returns within the drain
//                deadline instead of hanging teardown.
//
// Every test clears the global injector on exit (the workers share this
// process); stalls are interruptible, so clear() also releases any engine
// handler thread still sleeping inside a faulted handle_frame.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "router/engine_worker.hpp"
#include "router/router.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

/// Clears the process-global injector even when an ASSERT unwinds the test.
struct FaultGuard {
  ~FaultGuard() { fault::Injector::global().clear(); }
};

/// Polls `condition` for up to five seconds.
template <typename Condition>
bool eventually(Condition condition) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return condition();
}

class HedgeQuarantineTest : public ::testing::Test {
 protected:
  // Enough users that both engines own at least one with overwhelming
  // probability (the partition split depends on the per-run socket paths).
  static constexpr std::uint32_t kUsers = 16;

  void SetUp() override {
    rt::fill_store(dir_.store_root(), kUsers, /*versions=*/1);
    for (std::size_t i = 0; i < 2; ++i) {
      workers_.push_back(
          std::make_unique<EngineWorker>(rt::engine_config(dir_, i)));
      workers_.back()->start();
    }
  }

  void TearDown() override {
    fault::Injector::global().clear();
    workers_.clear();
  }

  void deploy_all(Router& router) {
    for (std::size_t i = 0; i < 2; ++i) {
      (void)router.add_backend(dir_.socket_address(i));
    }
    for (std::uint32_t user = 0; user < kUsers; ++user) {
      router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
    }
  }

  /// Requests covering every user plus their reference answers.
  void build_requests() {
    Rng rng(17);
    for (std::uint32_t user = 0; user < kUsers; ++user) {
      requests_.push_back({user, random_window(rng), 3});
      expected_.push_back(rt::reference_deployment(user, 1)
                              .predict_top_k(requests_.back().window, 3));
    }
  }

  rt::TempDir dir_;
  std::vector<std::unique_ptr<EngineWorker>> workers_;
  std::vector<serve::PredictRequest> requests_;
  std::vector<std::vector<std::uint16_t>> expected_;
};

TEST_F(HedgeQuarantineTest, HedgeWinsAgainstStalledPredictHandler) {
  FaultGuard guard;
  RouterConfig config;
  config.hedge_delay_ms = 25.0;         // hedge fast, the stall is forever
  config.hedge_budget_fraction = 1.0;   // budget must not gate this test
  config.request_timeout_ms = 10000.0;  // the hedge, not a timeout, must win
  Router router(config);
  deploy_all(router);
  build_requests();

  // Stall ONLY engine 0's predict handling: deploys, probes, and everything
  // on engine 1 run normally.
  fault::Rule stall;
  stall.site = "engine.handle.predict_batch";
  stall.peer = dir_.socket_address(0);
  stall.action = fault::Action::kStall;
  stall.delay_ms = 60000.0;
  fault::Injector::global().configure({stall}, /*seed=*/1);

  const auto start = std::chrono::steady_clock::now();
  const auto responses = router.serve(requests_);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok) << "user " << requests_[i].user_id;
    EXPECT_EQ(responses[i].locations, expected_[i])
        << "the hedged copy must serve the same bits";
  }
  // The answer came from the hedge, not from waiting out the 10 s timeout.
  EXPECT_LT(elapsed, std::chrono::seconds(8));
  EXPECT_GE(router.metrics().counter("router_hedges_total").value(), 1u);
  EXPECT_GE(router.metrics().counter("router_hedge_wins_total").value(), 1u);
  // The stalled engine was never declared dead — hedging routed around it.
  EXPECT_EQ(router.live_backends().size() + router.quarantined_backends()
                                                .size(),
            2u);

  fault::Injector::global().clear();  // release the stalled handler thread
}

TEST_F(HedgeQuarantineTest, StalledEngineIsQuarantinedThenRecovers) {
  FaultGuard guard;
  RouterConfig config;
  config.hedge_delay_ms = -1.0;  // quarantine path only, no hedging
  config.request_timeout_ms = 250.0;
  config.probe_timeout_ms = 100.0;
  config.probe_interval_ms = 50.0;
  config.quarantine_holddown_ms = 100.0;  // short: the test WANTS recovery
  Router router(config);
  deploy_all(router);
  build_requests();

  // Stall EVERYTHING engine 0 handles — predicts and health probes alike:
  // a genuinely wedged process that still accepts connections.
  fault::Rule stall;
  stall.site = "engine.handle.";
  stall.peer = dir_.socket_address(0);
  stall.action = fault::Action::kStall;
  stall.delay_ms = 60000.0;
  fault::Injector::global().configure({stall}, /*seed=*/1);

  // One serve call must ride out the timeout, quarantine the wedged engine,
  // and answer every request from the survivor — correctly.
  const auto responses = router.serve(requests_);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].ok)
        << "user " << requests_[i].user_id
        << " must be answered via quarantine-failover";
    EXPECT_EQ(responses[i].locations, expected_[i]);
  }
  EXPECT_EQ(router.quarantined_backends(),
            std::vector<std::string>{dir_.socket_address(0)});
  EXPECT_EQ(router.live_backends(),
            std::vector<std::string>{dir_.socket_address(1)});
  EXPECT_GE(router.metrics().counter("router_request_timeouts_total").value(),
            1u);
  EXPECT_EQ(router.metrics().counter("router_quarantines_total").value(), 1u);

  // Lift the fault: the wedged engine answers probes again, and the
  // recovery prober folds it back into the fleet.
  fault::Injector::global().clear();
  EXPECT_TRUE(eventually([&] { return router.live_backends().size() == 2; }))
      << "a recovered engine must be unquarantined";
  EXPECT_TRUE(router.quarantined_backends().empty());
  EXPECT_EQ(router.metrics().counter("router_unquarantines_total").value(),
            1u);

  // Back at full strength: the recovered engine owns partitions again and
  // serves its users with unchanged bits (its ledger re-deploy happened at
  // unquarantine).
  const auto after = router.serve(requests_);
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_TRUE(after[i].ok);
    EXPECT_EQ(after[i].locations, expected_[i]);
  }
  bool recovered_engine_owns_something = false;
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    if (router.owner_of(user) == dir_.socket_address(0)) {
      recovered_engine_owns_something = true;
    }
  }
  EXPECT_TRUE(recovered_engine_owns_something)
      << "unquarantine must hand partitions back";
}

TEST_F(HedgeQuarantineTest, DrainOfWedgedEngineHonorsDrainDeadline) {
  FaultGuard guard;
  RouterConfig config;
  config.hedge_delay_ms = -1.0;
  config.drain_timeout_ms = 200.0;
  Router router(config);
  deploy_all(router);

  fault::Rule stall;
  stall.site = "engine.handle.drain";
  stall.peer = dir_.socket_address(0);
  stall.action = fault::Action::kStall;
  stall.delay_ms = 60000.0;
  fault::Injector::global().configure({stall}, /*seed=*/1);

  const auto start = std::chrono::steady_clock::now();
  router.drain_fleet();  // engine 0 never acks; the deadline bounds the wait
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "a wedged engine must not hang drain_fleet";
  EXPECT_TRUE(router.live_backends().empty());

  fault::Injector::global().clear();  // release engine 0's drain handler
  // Engine 1 received its drain and winds down on its own; worker teardown
  // in TearDown() covers engine 0.
  workers_[1]->wait();
}

}  // namespace
}  // namespace pelican::router
