// Shared helpers for router-tier tests: per-test temp directories (socket
// paths + the fleet-shared filesystem model store), reference deployments
// to compare wire-served responses against, in-process EngineWorker fleets,
// and spawn/kill of real pelican_engined processes.
#pragma once

#include <signal.h>
#include <sys/prctl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "router/engine_worker.hpp"
#include "router/local_fleet.hpp"
#include "router/socket.hpp"
#include "serve/serve_support.hpp"
#include "store/model_store.hpp"

namespace pelican::router_testing {

using router::Address;
using router::EngineConfig;
using router::EngineWorker;
using router::parse_address;
using router::Socket;
using router::WireError;

/// Per-test scratch directory under /tmp. Kept SHORT on purpose: it hosts
/// Unix socket paths, and sockaddr_un caps them at ~107 bytes.
class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("plcn_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

  [[nodiscard]] std::string socket_address(std::size_t index) const {
    return router::fleet_socket_address(dir_, index);
  }
  [[nodiscard]] std::filesystem::path store_root() const {
    return dir_ / "store";
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

/// Deterministic per-(user, version) model seed, shared by the store
/// contents and the reference deployments responses are compared against.
inline std::uint64_t model_seed(std::uint32_t user, std::uint32_t version) {
  return 1000ULL + 17ULL * user + version;
}

inline double temperature_of(std::uint32_t user) {
  return user % 2 == 0 ? 1.0 : 5.0;
}

/// Populates the fleet-shared filesystem store with `versions` versions for
/// each of `users` users under scope "personal".
inline void fill_store(const std::filesystem::path& root, std::uint32_t users,
                       std::uint32_t versions) {
  store::ModelStore store(std::make_unique<store::FilesystemBackend>(root));
  for (std::uint32_t user = 0; user < users; ++user) {
    for (std::uint32_t version = 1; version <= versions; ++version) {
      store.put({"personal", user, version},
                serve_testing::tiny_model(model_seed(user, version)));
    }
  }
}

/// Adds one (user, version) model to the fleet-shared store — for users
/// outside a fill_store range (the filesystem backend reads on demand, so
/// this works even after engines have started).
inline void put_model(const std::filesystem::path& root, std::uint32_t user,
                      std::uint32_t version) {
  store::ModelStore store(std::make_unique<store::FilesystemBackend>(root));
  store.put({"personal", user, version},
            serve_testing::tiny_model(model_seed(user, version)));
}

/// The ground truth a routed response must match bit for bit: a standalone
/// deployment built from the same store seed.
inline core::DeployedModel reference_deployment(std::uint32_t user,
                                                std::uint32_t version) {
  return {serve_testing::tiny_model(model_seed(user, version)),
          serve_testing::tiny_spec(), core::PrivacyLayer(temperature_of(user)),
          core::DeploymentSite::kInCloud, version};
}

inline EngineConfig engine_config(const TempDir& dir, std::size_t index) {
  EngineConfig config;
  config.listen = dir.socket_address(index);
  config.store_root = dir.store_root();
  config.scope = "personal";
  config.registry_shards = 4;
  config.scheduler.max_batch = 8;
  config.scheduler.max_delay = std::chrono::microseconds(200);
  return config;
}

/// An in-process fleet of EngineWorkers, for tests that exercise the wire
/// path without fork/exec.
inline std::vector<std::unique_ptr<EngineWorker>> start_fleet(
    const TempDir& dir, std::size_t processes) {
  std::vector<std::unique_ptr<EngineWorker>> fleet;
  fleet.reserve(processes);
  for (std::size_t i = 0; i < processes; ++i) {
    fleet.push_back(std::make_unique<EngineWorker>(engine_config(dir, i)));
    fleet.back()->start();
  }
  return fleet;
}

/// Path of the pelican_engined binary: $PELICAN_ENGINED, or resolved
/// relative to this test binary (build/tests/x -> build/tools/...).
inline std::string engined_path() {
  if (const char* env = std::getenv("PELICAN_ENGINED")) return env;
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const auto candidate =
        self.parent_path().parent_path() / "tools" / "pelican_engined";
    if (std::filesystem::exists(candidate)) return candidate.string();
  }
  return "pelican_engined";  // last resort: $PATH
}

/// fork+exec of one engine process. Returns the child pid (-1 on failure).
/// `env` entries are setenv'd in the CHILD only (between fork and exec) —
/// how chaos tests hand one specific engine a PELICAN_FAULT spec without
/// faulting the test harness or its siblings.
inline pid_t spawn_engined(
    const TempDir& dir, std::size_t index,
    const std::vector<std::pair<std::string, std::string>>& env = {}) {
  const std::string binary = engined_path();
  const std::string listen = dir.socket_address(index);
  const std::string store = dir.store_root().string();
  std::vector<std::string> args = {binary,       "--listen",       listen,
                                   "--store",    store,            "--scope",
                                   "personal",   "--max-delay-us", "200",
                                   "--max-batch", "8"};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t parent = ::getpid();
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Die with the harness no matter how it exits. EngineProcesses covers
    // ASSERT early-returns, but a sanitizer abort calls _exit and skips
    // destructors — an orphaned engine would hold the test's stdout pipe
    // open and hang ctest on pipe EOF.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() != parent) ::_exit(127);  // parent already gone
    for (const auto& [key, value] : env) {
      ::setenv(key.c_str(), value.c_str(), /*overwrite=*/1);
    }
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; the parent's connect wait will time out
  }
  return pid;
}

/// Waits until `address` accepts a connection (the engine is up).
inline bool wait_connectable(const std::string& address) {
  return router::wait_connectable(parse_address(address));
}

/// SIGKILLs and reaps an engine process — the crash failover covers.
inline void kill_engined(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  (void)::waitpid(pid, &status, 0);
}

/// Reaps a child expected to exit cleanly (drained). Returns its exit code,
/// or -1 when it did not exit normally within the blocking wait.
inline int reap_engined(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Owns the engine processes a test spawns; whatever is still running at
/// destruction is SIGKILLed and reaped. Tests MUST spawn through this
/// rather than raw spawn_engined: a failing ASSERT_* returns from the test
/// mid-flight, and an orphaned engine both leaks and holds the test's
/// output pipe open — ctest then waits for pipe EOF and the whole suite
/// hangs (the failure mode that motivated this guard).
class EngineProcesses {
 public:
  EngineProcesses() = default;
  ~EngineProcesses() {
    for (pid_t& pid : pids_) {
      if (pid > 0) kill_engined(pid);
      pid = -1;
    }
  }
  EngineProcesses(const EngineProcesses&) = delete;
  EngineProcesses& operator=(const EngineProcesses&) = delete;

  /// Spawns engine `index` of `dir`'s fleet and tracks it. Returns the pid
  /// (<= 0 on failure, untracked). `env` reaches the child only (see
  /// spawn_engined) — e.g. a PELICAN_FAULT spec for chaos tests.
  pid_t spawn(const TempDir& dir, std::size_t index,
              const std::vector<std::pair<std::string, std::string>>& env =
                  {}) {
    const pid_t pid = spawn_engined(dir, index, env);
    if (pid > 0) pids_.push_back(pid);
    return pid;
  }

  [[nodiscard]] std::size_t size() const { return pids_.size(); }

  /// SIGKILL + reap of engine `i` now (crash-injection paths).
  void kill(std::size_t i) {
    kill_engined(pids_.at(i));
    pids_[i] = -1;
  }

  /// Reaps engine `i`, expected to exit cleanly (after a drain). Returns
  /// its exit code, -1 on abnormal exit. The guard stops tracking it.
  int reap(std::size_t i) {
    const pid_t pid = pids_.at(i);
    pids_[i] = -1;
    return reap_engined(pid);
  }

 private:
  std::vector<pid_t> pids_;
};

}  // namespace pelican::router_testing
