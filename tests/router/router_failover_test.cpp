// Acceptance (c): killing one engine PROCESS repartitions its users onto
// the survivors and subsequent queries succeed — with answers still
// bit-identical to the reference models, because the failover re-deploy
// pulls the same (user, version) artifacts from the fleet-shared store.
//
// This test runs real pelican_engined processes (fork+exec) and SIGKILLs
// one, so the router sees exactly what a production crash looks like:
// connections reset by the kernel, no goodbye.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "obs/trace.hpp"
#include "router/router.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

TEST(RouterFailoverTest, KilledEngineRepartitionsAndQueriesStillSucceed) {
  constexpr std::uint32_t kUsers = 12;
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kUsers, /*versions=*/1);

  // A 3-process fleet of real engine daemons.
  rt::EngineProcesses engines;
  std::vector<std::string> addresses;
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_GT(engines.spawn(dir, i), 0);
    addresses.push_back(dir.socket_address(i));
  }
  for (const auto& address : addresses) {
    ASSERT_TRUE(rt::wait_connectable(address))
        << "engine did not come up on " << address;
  }

  Router router;
  for (const auto& address : addresses) {
    (void)router.add_backend(address);
  }
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }

  // Reference answers, and a pre-kill routed pass proving the fleet works.
  Rng rng(5);
  std::vector<serve::PredictRequest> requests;
  std::vector<std::vector<std::uint16_t>> expected;
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    requests.push_back({user, random_window(rng), 3});
    auto reference = rt::reference_deployment(user, 1);
    expected.push_back(
        reference.predict_top_k(requests.back().window, 3));
  }
  const auto before = router.serve(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(before[i].ok);
    ASSERT_EQ(before[i].locations, expected[i]);
  }

  // Kill the process that owns the most users (guaranteed to own at least
  // one), the worst case for failover.
  std::map<std::string, std::size_t> owned;
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    ++owned[router.owner_of(user)];
  }
  const auto victim = std::max_element(
      owned.begin(), owned.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  const std::string dead_address = victim->first;
  const std::size_t orphaned_users = victim->second;
  ASSERT_GT(orphaned_users, 0u);
  const std::size_t victim_index = static_cast<std::size_t>(
      std::find(addresses.begin(), addresses.end(), dead_address) -
      addresses.begin());
  ASSERT_LT(victim_index, engines.size());
  engines.kill(victim_index);

  // Every query must still succeed, with unchanged answers: the router
  // detects the dead backend mid-serve, repartitions, re-deploys the
  // orphaned users from the shared store, and retries the failed slice.
  const auto after = router.serve(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(after[i].ok)
        << "user " << requests[i].user_id
        << " must be served after failover";
    EXPECT_EQ(after[i].locations, expected[i])
        << "failover re-deploy must serve the same store artifact";
  }

  // The fleet shrank by exactly the dead process, and ownership moved.
  const auto live = router.live_backends();
  EXPECT_EQ(live.size(), 2u);
  EXPECT_EQ(std::find(live.begin(), live.end(), dead_address), live.end());
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    EXPECT_NE(router.owner_of(user), dead_address);
  }

  // The failover retries show up in the router's own trace journal as
  // kFailoverRetry spans, under the SAME trace as the fan-out they rescued
  // — the slow request and its cause are one journal entry.
  bool saw_failover_span = false;
  for (const auto& rec : router.traces().journal()) {
    const bool has_retry = std::any_of(
        rec.spans.begin(), rec.spans.end(), [](const obs::Span& span) {
          return span.stage == obs::Stage::kFailoverRetry;
        });
    const bool has_fanout = std::any_of(
        rec.spans.begin(), rec.spans.end(), [](const obs::Span& span) {
          return span.stage == obs::Stage::kRouterFanout;
        });
    if (has_retry) {
      saw_failover_span = true;
      EXPECT_TRUE(has_fanout)
          << "retry spans must ride the trace of the serve they rescued";
    }
  }
  EXPECT_TRUE(saw_failover_span)
      << "a mid-serve backend death must journal a failover_retry span";

  // Steady state: another pass works without further repartitioning.
  const auto steady = router.serve(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(steady[i].ok);
    EXPECT_EQ(steady[i].locations, expected[i]);
  }

  // Graceful teardown of the survivors.
  router.drain_fleet();
  for (std::size_t i = 0; i < engines.size(); ++i) {
    if (i == victim_index) continue;
    EXPECT_EQ(engines.reap(i), 0) << "a drained engine must exit cleanly";
  }
}

}  // namespace
}  // namespace pelican::router
