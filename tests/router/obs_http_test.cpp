// ObsHttpServer over a real listener: raw HTTP requests on the router's
// own socket transport, responses read back to EOF. Covers the happy path
// (a real scrape of Prometheus text), routing errors (404/405), protocol
// errors (400/431), handler exceptions (500), and lifecycle (concurrent
// scrapes, stop() severing a half-open client).
#include "router/obs_http.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "router/socket.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

using router_testing::TempDir;

/// One-shot HTTP exchange: connect, write `request` verbatim, read to EOF.
std::string http_exchange(const Address& address, const std::string& request) {
  Socket socket = Socket::connect_to(address);
  socket.send_bytes(request);
  std::string response;
  char buffer[2048];
  for (;;) {
    const std::size_t got = socket.recv_some(buffer, sizeof(buffer));
    if (got == 0) break;
    response.append(buffer, got);
  }
  return response;
}

std::string body_of(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(ObsHttpServerTest, ServesARealScrapeOfPrometheusText) {
  TempDir dir;
  obs::Registry registry;
  registry.counter("requests_total").add(42);
  registry.histogram("lat_ms").observe(3.0);

  ObsHttpServer server(
      dir.socket_address(0), [&registry](const obs::HttpRequest& request) {
        EXPECT_EQ(request.method, "GET");
        obs::HttpResponse response;
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = obs::prometheus_text(registry.state(), "");
        return response;
      });
  server.start();

  const std::string response = http_exchange(
      server.address(), "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_EQ(response.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);

  // Parse the scrape like a collector would: every line is `name value`
  // or `name{labels} value`; the counter we set must come through exact.
  const std::string body = body_of(response);
  EXPECT_NE(body.find("pelican_requests_total 42\n"), std::string::npos);
  EXPECT_NE(body.find("pelican_lat_ms_count 1\n"), std::string::npos);
  // Content-Length matches the body byte-for-byte (EOF-delimited read).
  const std::string marker = "Content-Length: ";
  const auto at = response.find(marker);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(std::stoul(response.substr(at + marker.size())), body.size());

  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

TEST(ObsHttpServerTest, HandlerStatusAndExceptionsMapToHttpCodes) {
  TempDir dir;
  ObsHttpServer server(
      dir.socket_address(0), [](const obs::HttpRequest& request) {
        if (request.target == "/boom") throw std::runtime_error("exploded");
        if (request.target != "/ok") {
          return obs::HttpResponse{404, "text/plain; charset=utf-8",
                                   "nope\n"};
        }
        return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
      });
  server.start();

  EXPECT_EQ(http_exchange(server.address(), "GET /ok HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200 OK"),
            0u);
  EXPECT_EQ(http_exchange(server.address(), "GET /missing HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 404 Not Found"),
            0u);
  const std::string boom =
      http_exchange(server.address(), "GET /boom HTTP/1.1\r\n\r\n");
  EXPECT_EQ(boom.find("HTTP/1.1 500 Internal Server Error"), 0u);
  EXPECT_NE(body_of(boom).find("exploded"), std::string::npos)
      << "the handler's what() reaches the client";
  server.stop();
}

TEST(ObsHttpServerTest, ProtocolErrorsGet400And431) {
  TempDir dir;
  ObsHttpServer server(dir.socket_address(0),
                       [](const obs::HttpRequest&) {
                         return obs::HttpResponse{200,
                                                  "text/plain; charset=utf-8",
                                                  "ok\n"};
                       });
  server.start();

  // Malformed request line (complete head, no parseable fields).
  EXPECT_EQ(http_exchange(server.address(), "garbage\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            0u);

  // A head that never terminates within the cap draws 431.
  std::string oversized = "GET / HTTP/1.1\r\nX-Filler: ";
  oversized.append(obs::kMaxHttpHeadBytes, 'a');
  EXPECT_EQ(http_exchange(server.address(), oversized)
                .find("HTTP/1.1 431 Request Header Fields Too Large"),
            0u);
  server.stop();
}

TEST(ObsHttpServerTest, ConcurrentScrapesAllSucceed) {
  TempDir dir;
  ObsHttpServer server(dir.socket_address(0),
                       [](const obs::HttpRequest&) {
                         return obs::HttpResponse{200,
                                                  "text/plain; charset=utf-8",
                                                  "ok\n"};
                       });
  server.start();

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      responses[static_cast<std::size_t>(c)] =
          http_exchange(server.address(), "GET / HTTP/1.1\r\n\r\n");
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::string& response : responses) {
    EXPECT_EQ(response.find("HTTP/1.1 200 OK"), 0u);
  }
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
}

TEST(ObsHttpServerTest, StopSeversHalfOpenClients) {
  TempDir dir;
  ObsHttpServer server(dir.socket_address(0),
                       [](const obs::HttpRequest&) {
                         return obs::HttpResponse{};
                       });
  server.start();
  // Connect and send an INCOMPLETE head, then just hold the connection:
  // stop() must shut the connection down and return rather than wait out
  // the 5s io-timeout, let alone hang.
  Socket lurker = Socket::connect_to(server.address());
  lurker.send_bytes("GET / HTTP/1.1\r\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();  // must not block on the lurker
  SUCCEED();
}

}  // namespace
}  // namespace pelican::router
