// Acceptance: one engine of a live 2-process fleet is STALLED — fault
// injection via PELICAN_FAULT in that engine's environment, the process
// stays up, nothing is SIGKILLed — and every read still completes within
// its deadline, bit-identical to the unfaulted reference, first via hedged
// requests and then, as the stalling persists, via quarantine.
//
// This is the hung-engine scenario the SIGKILL failover test cannot cover:
// the engine accepts connections, answers health probes and admin verbs,
// but its predict handling sleeps 30 s per request. Dead-engine detection
// never fires; the deadline/hedge/quarantine machinery must carry the
// traffic.
#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <string>
#include <vector>

#include "router/router.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;
using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_spec;

TEST(ChaosTest, StalledEngineIsMaskedByHedgesThenQuarantined) {
  constexpr std::uint32_t kUsers = 24;
  constexpr double kDeadlineMs = 10000.0;
  rt::TempDir dir;
  rt::fill_store(dir.store_root(), kUsers, /*versions=*/1);

  // Engine 0 boots with a seeded stall on its predict handler — and ONLY
  // that verb: deploys, health probes, and drain answer normally, so the
  // process looks alive to everything but predict traffic.
  rt::EngineProcesses engines;
  const pid_t stalled_pid = engines.spawn(
      dir, 0,
      {{"PELICAN_FAULT",
        "seed=42;rule=site:engine.handle.predict_batch,action:stall,"
        "ms:30000"}});
  ASSERT_GT(stalled_pid, 0);
  ASSERT_GT(engines.spawn(dir, 1), 0);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(rt::wait_connectable(dir.socket_address(i)));
  }

  RouterConfig config;
  config.hedge_delay_ms = 50.0;        // pinned: no p99 history yet
  config.hedge_budget_fraction = 1.0;  // the budget must not gate this test
  config.request_timeout_ms = 2000.0;
  // The stalled engine's HEALTH verb answers fine — only predicts hang —
  // so without a long hold-down the recovery prober would fold it straight
  // back in and the fleet would flap for the rest of the test.
  config.quarantine_holddown_ms = 60000.0;
  Router router(config);
  (void)router.add_backend(dir.socket_address(0));
  (void)router.add_backend(dir.socket_address(1));
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    router.deploy(user, 1, tiny_spec(), rt::temperature_of(user));
  }

  // The unfaulted ground truth: reference deployments of the same store
  // artifacts. Every request carries a deadline that rides the wire.
  Rng rng(29);
  std::vector<serve::PredictRequest> requests;
  std::vector<std::vector<std::uint16_t>> expected;
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    serve::PredictRequest request{user, random_window(rng), 3};
    request.deadline_ms = kDeadlineMs;
    requests.push_back(request);
    expected.push_back(
        rt::reference_deployment(user, 1).predict_top_k(request.window, 3));
  }

  // Several passes: early ones are carried by hedges (the stalled engine
  // keeps its partitions, the duplicate read wins), and the accumulating
  // timeout strikes then quarantine it. EVERY read of EVERY pass must make
  // its deadline with unchanged bits.
  for (int pass = 0; pass < 5; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    const auto responses = router.serve(requests);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed_ms, kDeadlineMs)
        << "pass " << pass << " blew the request deadline";
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok)
          << "pass " << pass << ", user " << requests[i].user_id;
      EXPECT_EQ(responses[i].locations, expected[i])
          << "chaos must never change served bits (pass " << pass << ")";
    }
  }

  // The stall was masked by hedges and/or quarantine — and the stalled
  // process is still alive: this is the hung path, not the SIGKILL path.
  const auto hedges =
      router.metrics().counter("router_hedges_total").value();
  const auto quarantines =
      router.metrics().counter("router_quarantines_total").value();
  EXPECT_GT(hedges + quarantines, 0u)
      << "the stall must have been routed around, not waited out";
  EXPECT_EQ(::kill(stalled_pid, 0), 0)
      << "the stalled engine must still be running (nothing was killed)";

  // Persistent stalling ends in quarantine: by the last pass the stalled
  // engine owns nothing and the survivor serves everyone directly.
  EXPECT_EQ(router.quarantined_backends(),
            std::vector<std::string>{dir.socket_address(0)});
  EXPECT_EQ(router.live_backends(),
            std::vector<std::string>{dir.socket_address(1)});
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    EXPECT_EQ(router.owner_of(user), dir.socket_address(1));
  }

  // Teardown: the healthy engine drains cleanly; the stalled one gets its
  // drain too (its drain verb is unfaulted) but may still hold sleeping
  // predict threads, so EngineProcesses' destructor reaps it by force.
  router.drain_fleet();
  EXPECT_EQ(engines.reap(1), 0) << "the healthy engine must exit cleanly";
}

}  // namespace
}  // namespace pelican::router
