// Satellite (c): malformed frames surface as clean typed errors on both
// sides of the wire — never a hang, never an unbounded allocation.
//
//   engine side   a client that sends a truncated length prefix, an
//                 oversized length claim, or half a frame then disappears
//                 gets its connection severed; the engine keeps serving
//                 everyone else.
//   router side   recv_frame throws WireError on an oversized claim or a
//                 peer that dies mid-frame, and WireTimeout (a WireError
//                 subclass) when the peer just goes silent past the
//                 socket's I/O deadline.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "router/engine_worker.hpp"
#include "router/socket.hpp"
#include "router/wire.hpp"
#include "router_support.hpp"

namespace pelican::router {
namespace {

namespace rt = pelican::router_testing;

/// Raw byte write, bypassing Socket's framing — how a corrupt or hostile
/// peer is played.
void write_raw(int fd, const void* data, std::size_t bytes) {
  const auto* cursor = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t sent = ::send(fd, cursor, bytes, MSG_NOSIGNAL);
    ASSERT_GT(sent, 0) << "raw test write failed";
    cursor += sent;
    bytes -= static_cast<std::size_t>(sent);
  }
}

class MalformedFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<EngineWorker>(rt::engine_config(dir_, 0));
    engine_->start();
    address_ = parse_address(dir_.socket_address(0));
  }

  /// The liveness oracle: a well-formed health exchange succeeding proves
  /// the engine shrugged the malformed connection off.
  void expect_engine_alive() {
    Socket socket = Socket::connect_to(address_);
    socket.set_io_timeout(5000);  // an unresponsive engine fails, not hangs
    socket.send_frame(encode_health());
    const HealthReply reply = decode_health_reply(socket.recv_frame());
    EXPECT_FALSE(reply.draining);
  }

  rt::TempDir dir_;
  std::unique_ptr<EngineWorker> engine_;
  Address address_;
};

TEST_F(MalformedFrameTest, TruncatedLengthPrefixSeversConnection) {
  {
    Socket socket = Socket::connect_to(address_);
    const std::uint8_t half_prefix[2] = {0x10, 0x00};  // 2 of 4 length bytes
    write_raw(socket.fd(), half_prefix, sizeof half_prefix);
  }  // close mid-prefix
  expect_engine_alive();
}

TEST_F(MalformedFrameTest, OversizedLengthClaimIsRejectedNotAllocated) {
  Socket socket = Socket::connect_to(address_);
  const std::uint32_t claim = kMaxFrameBytes + 1;
  write_raw(socket.fd(), &claim, sizeof claim);
  // The engine must sever immediately — observed as a typed error on our
  // next read, well before any timeout.
  socket.set_io_timeout(5000);
  EXPECT_THROW((void)socket.recv_frame(), WireError);
  expect_engine_alive();
}

TEST_F(MalformedFrameTest, MidFrameCloseSeversConnection) {
  {
    Socket socket = Socket::connect_to(address_);
    const std::uint32_t claim = 100;
    write_raw(socket.fd(), &claim, sizeof claim);
    const std::vector<std::uint8_t> partial(10, 0xAB);
    write_raw(socket.fd(), partial.data(), partial.size());
  }  // vanish with 90 bytes owed
  expect_engine_alive();
}

TEST_F(MalformedFrameTest, GarbageVerbIsAnsweredNotFatal) {
  Socket socket = Socket::connect_to(address_);
  socket.set_io_timeout(5000);
  const std::vector<std::uint8_t> garbage = {0xFF, 0xDE, 0xAD, 0xBE, 0xEF};
  socket.send_frame(garbage);  // well-framed, nonsense inside
  const Ack ack = decode_ack(socket.recv_frame());
  EXPECT_FALSE(ack.ok) << "a garbage frame is a refused request, not a crash";
  expect_engine_alive();
}

/// Router-side typed errors, against a raw fake server.
class RawServer {
 public:
  explicit RawServer(const std::string& address)
      : listener_(ListenSocket::bind_to(parse_address(address))) {}

  /// Accepts one connection and runs `script` on its raw fd.
  template <typename Script>
  void run(Script script) {
    thread_ = std::thread([this, script] {
      if (!listener_.wait_readable(5000)) return;
      try {
        Socket accepted = listener_.accept();
        script(accepted.fd());
      } catch (const WireError&) {
      }
    });
  }

  ~RawServer() {
    if (thread_.joinable()) thread_.join();
    listener_.close();
  }

 private:
  ListenSocket listener_;
  std::thread thread_;
};

TEST_F(MalformedFrameTest, ClientRejectsOversizedClaim) {
  const std::string address = dir_.socket_address(1);
  RawServer server(address);
  server.run([](int fd) {
    const std::uint32_t claim = kMaxFrameBytes + 1;
    std::uint8_t bytes[sizeof claim];
    std::memcpy(bytes, &claim, sizeof claim);
    (void)::send(fd, bytes, sizeof bytes, MSG_NOSIGNAL);
  });
  Socket socket = Socket::connect_to(parse_address(address));
  socket.set_io_timeout(5000);
  try {
    (void)socket.recv_frame();
    FAIL() << "an oversized length claim must throw";
  } catch (const WireTimeout&) {
    FAIL() << "the claim must be rejected on arrival, not timed out";
  } catch (const WireError& error) {
    EXPECT_NE(std::string(error.what()).find("oversized"), std::string::npos);
  }
}

TEST_F(MalformedFrameTest, ClientSurfacesMidFramePeerDeath) {
  const std::string address = dir_.socket_address(1);
  RawServer server(address);
  server.run([](int fd) {
    const std::uint32_t claim = 100;
    (void)::send(fd, &claim, sizeof claim, MSG_NOSIGNAL);
    const std::uint8_t partial[10] = {};
    (void)::send(fd, partial, sizeof partial, MSG_NOSIGNAL);
    // return: RawServer closes the accepted socket with 90 bytes owed
  });
  Socket socket = Socket::connect_to(parse_address(address));
  socket.set_io_timeout(5000);
  EXPECT_THROW((void)socket.recv_frame(), WireError);
}

TEST_F(MalformedFrameTest, SilentPeerThrowsWireTimeout) {
  const std::string address = dir_.socket_address(1);
  RawServer server(address);
  server.run([](int fd) {
    // Say nothing; just hold the connection open past the client deadline.
    std::uint8_t byte = 0;
    (void)::recv(fd, &byte, 1, 0);  // parked until the client gives up
  });
  Socket socket = Socket::connect_to(parse_address(address));
  socket.set_io_timeout(50);
  EXPECT_THROW((void)socket.recv_frame(), WireTimeout);
}

}  // namespace
}  // namespace pelican::router
