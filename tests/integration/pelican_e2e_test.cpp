// End-to-end lifecycle test of the Pelican system (Fig. 4): cloud-based
// initial training -> device-based personalization -> deployment -> privacy
// audit (attack with and without the privacy layer) -> model update.
#include <gtest/gtest.h>

#include "core/pelican.hpp"
#include "nn/metrics.hpp"
#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican {
namespace {

class PelicanE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new testing::World(testing::make_untrained_world(
        /*weeks=*/5, /*contributors=*/4, /*users=*/1));

    // Phase 1: cloud-based initial training.
    std::vector<mobility::Window> pooled;
    for (const auto& trajectory : world_->contributor_trajectories) {
      const auto windows = mobility::make_windows(
          trajectory, mobility::SpatialLevel::kBuilding);
      pooled.insert(pooled.end(), windows.begin(), windows.end());
    }
    const models::WindowDataset contributors(std::move(pooled),
                                               world_->spec);
    models::GeneralModelConfig general_config;
    general_config.hidden_dim = 24;
    general_config.train.epochs = 6;
    general_config.train.lr = 3e-3;
    cloud_ = new core::CloudServer();
    (void)cloud_->train_general(contributors, general_config);

    // Phase 2: device-based personalization for the user.
    const auto windows = mobility::make_windows(
        world_->user_trajectories[0], mobility::SpatialLevel::kBuilding);
    auto split = mobility::split_windows(windows, 0.8);
    test_windows_ = new std::vector<mobility::Window>(std::move(split.test));
    device_ = new core::Device(1, std::move(split.train), world_->spec);
    models::PersonalizationConfig personal_config;
    personal_config.method =
        models::PersonalizationMethod::kFeatureExtraction;
    personal_config.train.epochs = 8;
    personal_config.train.lr = 3e-3;
    personalization_cost_ =
        device_->personalize(*cloud_, personal_config);
  }

  static void TearDownTestSuite() {
    delete device_;
    delete test_windows_;
    delete cloud_;
    delete world_;
  }

  static testing::World* world_;
  static core::CloudServer* cloud_;
  static core::Device* device_;
  static std::vector<mobility::Window>* test_windows_;
  static PhaseCost personalization_cost_;
};

testing::World* PelicanE2E::world_ = nullptr;
core::CloudServer* PelicanE2E::cloud_ = nullptr;
core::Device* PelicanE2E::device_ = nullptr;
std::vector<mobility::Window>* PelicanE2E::test_windows_ = nullptr;
PhaseCost PelicanE2E::personalization_cost_;

TEST_F(PelicanE2E, PersonalizationIsCheaperThanCloudTraining) {
  // Section V-C2's overhead claim, at our scale: the on-device phase costs
  // a fraction of the cloud phase.
  const PhaseCost& cloud_cost = cloud_->training_cost(1);
  EXPECT_LT(personalization_cost_.cpu_seconds, cloud_cost.cpu_seconds)
      << "device-side personalization must be cheaper than cloud training";
}

TEST_F(PelicanE2E, PersonalizedModelServesUsefulPredictions) {
  const models::WindowDataset holdout(*test_windows_, world_->spec);
  auto& model =
      const_cast<nn::SequenceClassifier&>(device_->personalized_model());
  const double top3 = nn::topk_accuracy(model, holdout, 3);
  const double chance =
      3.0 / static_cast<double>(world_->spec.num_locations);
  EXPECT_GT(top3, chance + 0.2);
}

TEST_F(PelicanE2E, AttackLeaksWithoutDefenseAndDefenseCutsLeakage) {
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {1, 3};
  config.max_windows = 40;

  // User enables the strong privacy setting.
  device_->set_privacy_temperature(core::PrivacyLayer::kStrongTemperature);
  const core::PrivacyAudit audit = core::audit_device(
      *device_, *test_windows_, attack::PriorKind::kTrue, config);

  const double chance_top3 =
      3.0 / static_cast<double>(world_->spec.num_locations);
  EXPECT_GT(audit.baseline.at_k(3), chance_top3 + 0.15)
      << "undefended personalized model must leak history";
  EXPECT_LE(audit.defended.at_k(3), audit.baseline.at_k(3))
      << "privacy layer must not increase leakage";
  ASSERT_EQ(audit.reduction_percent.size(), 2u);
  EXPECT_GE(audit.reduction_percent[1], 0.0);
}

TEST_F(PelicanE2E, DefenseKeepsServiceTopPredictionAndAccuracy) {
  device_->set_privacy_temperature(core::PrivacyLayer::kStrongTemperature);
  core::DeployedModel defended = device_->deploy_local();
  core::DeployedModel plain(device_->personalized_model().clone(),
                            world_->spec, core::PrivacyLayer(1.0),
                            core::DeploymentSite::kOnDevice);
  // What the defense guarantees at finite precision: the top prediction is
  // bit-identical, and a defended top-3 service is never worse than a
  // top-1 service (the extra, possibly-saturated slots can only add hits).
  // The paper's stronger "accuracy unchanged at every k" reading assumes
  // unbounded confidence precision; EXPERIMENTS.md records the measured
  // top-3 cost of the strong temperature.
  std::size_t plain_top1_hits = 0, defended_top3_hits = 0;
  for (const auto& window : *test_windows_) {
    const auto plain_top1 = plain.predict_top_k(window, 1);
    EXPECT_EQ(plain_top1, defended.predict_top_k(window, 1));
    plain_top1_hits += (plain_top1[0] == window.next_location);
    for (const auto loc : defended.predict_top_k(window, 3)) {
      defended_top3_hits += (loc == window.next_location);
    }
  }
  EXPECT_GE(defended_top3_hits, plain_top1_hits);
}

TEST_F(PelicanE2E, CloudDeploymentKeepsDefenseActive) {
  device_->set_privacy_temperature(1e-4);
  device_->deploy_to_cloud(*cloud_);
  ASSERT_TRUE(cloud_->hosts_user(1));
  core::DeployedModel& hosted = cloud_->hosted_model(1);

  // Even in the cloud, confidences are saturated — the provider cannot see
  // graded scores.
  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(1, world_->spec.input_dim(), 0.0f));
  models::encode_window((*test_windows_)[0], world_->spec, x, 0);
  const nn::Matrix probs = hosted.query(x);
  float top = 0.0f;
  for (const float p : probs.row(0)) top = std::max(top, p);
  EXPECT_GT(top, 0.999f);
}

TEST_F(PelicanE2E, ModelUpdateFlowsEndToEnd) {
  // Phase 4: new data arrives, transfer learning re-runs, redeployment.
  models::PersonalizationConfig config;
  config.method = models::PersonalizationMethod::kFeatureExtraction;
  config.train.epochs = 2;
  config.train.lr = 1e-3;
  const std::size_t before = device_->private_data().size();
  const PhaseCost cost = device_->update(*test_windows_, config);
  EXPECT_GT(cost.wall_seconds, 0.0);
  EXPECT_EQ(device_->private_data().size(),
            before + test_windows_->size());

  const core::DeployedModel redeployed = device_->deploy_local();
  EXPECT_EQ(redeployed.site(), core::DeploymentSite::kOnDevice);
}

}  // namespace
}  // namespace pelican
