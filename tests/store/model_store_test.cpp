#include "store/model_store.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "nn/model.hpp"

namespace pelican::store {
namespace {

nn::SequenceClassifier tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  return nn::make_one_layer_lstm(/*input_dim=*/6, /*hidden_dim=*/4,
                                 /*num_classes=*/5, /*dropout_rate=*/0.0,
                                 rng);
}

/// Parameter-level equality: same architecture and bit-identical weights.
bool same_weights(const nn::SequenceClassifier& a,
                  const nn::SequenceClassifier& b) {
  auto ca = const_cast<nn::SequenceClassifier&>(a).all_params();
  auto cb = const_cast<nn::SequenceClassifier&>(b).all_params();
  if (ca.size() != cb.size()) return false;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    const nn::Matrix& ma = *ca[i].value;
    const nn::Matrix& mb = *cb[i].value;
    if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) return false;
    for (std::size_t r = 0; r < ma.rows(); ++r) {
      for (std::size_t c = 0; c < ma.cols(); ++c) {
        if (ma(r, c) != mb(r, c)) return false;
      }
    }
  }
  return true;
}

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("pelican_store_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  [[nodiscard]] const std::filesystem::path& path() const { return dir_; }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

TEST(ModelStoreTest, PutGetRoundTripsWeights) {
  ModelStore store;
  auto original = tiny_model(1);
  store.put({"scope", 7, 3}, original.clone());

  const auto fetched = store.get({"scope", 7, 3});
  EXPECT_TRUE(same_weights(original, fetched));
  EXPECT_TRUE(store.contains({"scope", 7, 3}));
  EXPECT_FALSE(store.contains({"scope", 7, 4}));
  EXPECT_FALSE(store.contains({"other", 7, 3}));
}

TEST(ModelStoreTest, GetReturnsIndependentCopies) {
  ModelStore store;
  store.put({"scope", 0, 1}, tiny_model(2));
  auto copy = store.get({"scope", 0, 1});
  // Mutate the copy; the stored artifact must be unaffected.
  auto params = copy.all_params();
  (*params[0].value)(0, 0) += 100.0f;
  EXPECT_FALSE(same_weights(copy, store.get({"scope", 0, 1})));
}

TEST(ModelStoreTest, GetThrowsNamingTheKey) {
  ModelStore store;
  try {
    (void)store.get({"general", 0, 42});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("general/u0/v42"),
              std::string::npos)
        << "message must name the missing key, got: " << e.what();
  }
}

TEST(ModelStoreTest, PutNextAllocatesMonotoneVersions) {
  ModelStore store;
  EXPECT_EQ(store.put_next("scope", 5, tiny_model(1)), 1u);
  EXPECT_EQ(store.put_next("scope", 5, tiny_model(2)), 2u);
  EXPECT_EQ(store.put_next("scope", 6, tiny_model(3)), 1u)
      << "versions are per (scope, user) slot";
  EXPECT_EQ(store.latest("scope", 5), 2u);
  EXPECT_EQ(store.versions("scope", 5),
            (std::vector<std::uint32_t>{1, 2}));
  EXPECT_THROW((void)store.latest("scope", 99), std::out_of_range);
  EXPECT_FALSE(store.find_latest("scope", 99).has_value());
}

TEST(ModelStoreTest, PutNextIsAtomicAcrossThreads) {
  ModelStore store;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::uint32_t> got(kThreads, 0);
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { got[t] = store.put_next("scope", 0, tiny_model(t)); });
  }
  for (auto& thread : threads) thread.join();
  std::sort(got.begin(), got.end());
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[t], t + 1) << "every thread must get a distinct version";
  }
}

TEST(ModelStoreTest, PinProtectsFromTrimEraseDoesNot) {
  ModelStore store;
  for (std::uint32_t v = 1; v <= 4; ++v) {
    store.put({"scope", 0, v}, tiny_model(v));
  }
  EXPECT_TRUE(store.pin({"scope", 0, 2}));
  EXPECT_FALSE(store.pin({"scope", 0, 99})) << "cannot pin what isn't there";
  EXPECT_TRUE(store.pinned({"scope", 0, 2}));

  // keep_latest=1 keeps v4; v2 survives through its pin; v1 and v3 go.
  EXPECT_EQ(store.trim("scope", 0), 2u);
  EXPECT_EQ(store.versions("scope", 0),
            (std::vector<std::uint32_t>{2, 4}));

  // Explicit erase ignores pins (and drops them).
  EXPECT_TRUE(store.erase({"scope", 0, 2}));
  EXPECT_FALSE(store.pinned({"scope", 0, 2}));
  EXPECT_FALSE(store.unpin({"scope", 0, 2}));
  EXPECT_EQ(store.versions("scope", 0), (std::vector<std::uint32_t>{4}));
}

TEST(ModelStoreTest, RejectsUnsafeScopesOnEveryPathRegardlessOfBackend) {
  // Scope validation happens in ModelStore itself, so a memory-backed
  // store behaves exactly like a filesystem-backed one — including on the
  // read path, where only the fs backend would otherwise care.
  ModelStore store;
  EXPECT_THROW(store.put({"", 0, 1}, tiny_model(1)), std::invalid_argument);
  EXPECT_THROW(store.put({"/abs", 0, 1}, tiny_model(1)),
               std::invalid_argument);
  EXPECT_THROW(store.put({"a/../b", 0, 1}, tiny_model(1)),
               std::invalid_argument);
  EXPECT_THROW((void)store.find({"a/../b", 0, 1}), std::invalid_argument);
  EXPECT_THROW((void)store.contains({"/abs", 0, 1}), std::invalid_argument);
  EXPECT_THROW((void)store.versions("", 0), std::invalid_argument);
  EXPECT_THROW((void)store.find_latest("a/../b", 0), std::invalid_argument);
  EXPECT_NO_THROW(store.put({"nested/scope", 0, 1}, tiny_model(1)));
}

TEST(ModelStoreTest, FilesystemBackendPersistsAcrossInstances) {
  TempDir dir;
  auto original = tiny_model(9);
  {
    ModelStore store(std::make_unique<FilesystemBackend>(dir.path()));
    store.put({"bench/tiny", 3, 1}, original.clone());
    (void)store.put_next("bench/tiny", 3, tiny_model(10));  // v2
  }
  // A fresh store over the same root sees everything, including latest().
  ModelStore reopened(std::make_unique<FilesystemBackend>(dir.path()));
  EXPECT_EQ(reopened.latest("bench/tiny", 3), 2u);
  EXPECT_TRUE(same_weights(original, reopened.get({"bench/tiny", 3, 1})));
  EXPECT_TRUE(reopened.erase({"bench/tiny", 3, 2}));
  EXPECT_EQ(reopened.versions("bench/tiny", 3),
            (std::vector<std::uint32_t>{1}));
}

TEST(ModelStoreTest, FilesystemBackendThrowsSerializeErrorOnCorruptEntry) {
  TempDir dir;
  ModelStore store(std::make_unique<FilesystemBackend>(dir.path()));
  store.put({"scope", 0, 1}, tiny_model(1));

  // Truncate the checkpoint behind the store's back.
  const auto path = dir.path() / "scope" / "u0" / "v1.bin";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::resize_file(path, 8);

  EXPECT_THROW((void)store.find({"scope", 0, 1}), SerializeError)
      << "a present-but-undecodable artifact is an error, not a miss";
  EXPECT_FALSE(store.find({"scope", 0, 2}).has_value())
      << "a genuinely absent artifact is a miss, not an error";
}

TEST(ModelStoreTest, FilesystemBackendDetectsBitLevelCorruption) {
  // Artifact-integrity regression (ROADMAP "model store, phase 2"): a
  // single flipped bit deep inside the weight payload — which deserializes
  // into perfectly plausible garbage without a checksum — must fail the
  // checkpoint-header CRC in FilesystemBackend::get.
  TempDir dir;
  ModelStore store(std::make_unique<FilesystemBackend>(dir.path()));
  store.put({"scope", 4, 1}, tiny_model(3));

  const auto path = dir.path() / "scope" / "u4" / "v1.bin";
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    const std::streamoff target = static_cast<std::streamoff>(size / 2);
    char byte = 0;
    file.seekg(target);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(target);
    file.write(&byte, 1);
  }

  EXPECT_THROW((void)store.get({"scope", 4, 1}), SerializeError)
      << "a corrupted weight payload must never be served as a model";
}

TEST(ModelStoreTest, FilesystemBackendIgnoresForeignFiles) {
  TempDir dir;
  ModelStore store(std::make_unique<FilesystemBackend>(dir.path()));
  store.put({"scope", 0, 3}, tiny_model(1));
  const auto slot = dir.path() / "scope" / "u0";
  std::ofstream(slot / "README.txt") << "not a checkpoint";
  std::ofstream(slot / "vNaN.bin") << "not a version";
  EXPECT_EQ(store.versions("scope", 0), (std::vector<std::uint32_t>{3}));
}

}  // namespace
}  // namespace pelican::store
