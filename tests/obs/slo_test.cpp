// obs slo: multi-window burn-rate objectives over the time-series store.
// The semantics under test:
//
//   - burn = (bad fraction) / (budget fraction); a sample is good iff
//     value <= target, and NaN is always bad;
//   - a breach requires EVERY window to have samples AND burn at or above
//     the threshold — an empty window can never page;
//   - transitions (not levels) bump counters and land journal events, in
//     both directions.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace pelican::obs {
namespace {

SloSpec p99_spec() {
  SloSpec spec;
  spec.name = "predict-p99";
  spec.series = "lat_ms_p99";
  spec.target = 100.0;          // good iff p99 <= 100ms
  spec.budget_fraction = 0.1;   // 10% of samples may be bad
  spec.windows_s = {5.0, 60.0};
  spec.burn_threshold = 1.0;
  return spec;
}

/// Pushes `n` points into the recent past (within every window).
void push_recent(TimeSeriesStore& store, const std::string& series, int n,
                 double value) {
  const std::uint64_t now = unix_now_ms();
  for (int i = 0; i < n; ++i) {
    store.push(series, now - static_cast<std::uint64_t>(n - i), value);
  }
}

TEST(SloTrackerTest, HealthySeriesDoesNotBreach) {
  TimeSeriesStore store;
  SloTracker tracker(store);
  tracker.add(p99_spec());
  EXPECT_EQ(tracker.size(), 1u);

  push_recent(store, "lat_ms_p99", 20, 50.0);  // all good
  const auto statuses = tracker.evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].breached);
  EXPECT_DOUBLE_EQ(statuses[0].worst_burn, 0.0);
  ASSERT_EQ(statuses[0].windows.size(), 2u);
  EXPECT_GT(statuses[0].windows[0].samples, 0u);
}

TEST(SloTrackerTest, EmptyWindowCannotBreach) {
  TimeSeriesStore store;
  SloTracker tracker(store);
  tracker.add(p99_spec());
  // No samples at all: burn undefined, must NOT breach.
  EXPECT_FALSE(tracker.evaluate()[0].breached);
}

TEST(SloTrackerTest, BreachAndRecoveryAreTransitionsWithCountersAndEvents) {
  TimeSeriesStore store;
  Registry metrics;
  EventJournal journal;
  SloTracker tracker(store, &metrics, &journal);
  tracker.add(p99_spec());

  // Counters exist at zero before anything happens (eager registration).
  EXPECT_EQ(metrics.counter("slo_breaches_total").value(), 0u);

  // Every recent sample bad: bad_fraction 1.0 / budget 0.1 = burn 10.
  push_recent(store, "lat_ms_p99", 20, 500.0);
  auto statuses = tracker.evaluate();
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_NEAR(statuses[0].worst_burn, 10.0, 1e-9);
  EXPECT_EQ(metrics.counter("slo_breaches_total").value(), 1u);
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.snapshot()[0].type, EventType::kSloBreach);
  EXPECT_EQ(journal.snapshot()[0].subject, "predict-p99");

  // Still breached: a LEVEL, not a transition — nothing new recorded.
  tracker.evaluate();
  EXPECT_EQ(metrics.counter("slo_breaches_total").value(), 1u);
  EXPECT_EQ(journal.size(), 1u);

  // Flood the short window with good samples: its burn drops under the
  // threshold, so the all-windows conjunction fails -> recovery.
  push_recent(store, "lat_ms_p99", 200, 10.0);
  statuses = tracker.evaluate();
  EXPECT_FALSE(statuses[0].breached);
  EXPECT_EQ(metrics.counter("slo_recoveries_total").value(), 1u);
  ASSERT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.snapshot()[1].type, EventType::kSloRecovered);

  // status() serves the retained last evaluation.
  EXPECT_FALSE(tracker.status()[0].breached);
}

TEST(SloTrackerTest, NanSamplesCountAsBad) {
  TimeSeriesStore store;
  SloTracker tracker(store);
  SloSpec spec = p99_spec();
  spec.budget_fraction = 0.5;
  spec.windows_s = {60.0};
  tracker.add(spec);

  push_recent(store, "lat_ms_p99",  10,
              std::numeric_limits<double>::quiet_NaN());
  const auto statuses = tracker.evaluate();
  EXPECT_TRUE(statuses[0].breached) << "NaN must never read as good";
  EXPECT_NEAR(statuses[0].worst_burn, 2.0, 1e-9);
}

TEST(SloTrackerTest, ShortWindowConfirmsItIsHappeningNow) {
  // Old badness outside the short window: the long window burns but the
  // short one is clean -> no breach (the incident is over).
  TimeSeriesStore store;
  SloTracker tracker(store);
  SloSpec spec = p99_spec();  // windows 5s and 60s
  tracker.add(spec);

  const std::uint64_t now = unix_now_ms();
  for (int i = 0; i < 20; ++i) {
    store.push("lat_ms_p99", now - 30000 + static_cast<std::uint64_t>(i),
               500.0);  // bad, ~30s ago
  }
  for (int i = 0; i < 20; ++i) {
    store.push("lat_ms_p99", now - 20 + static_cast<std::uint64_t>(i),
               10.0);  // good, now
  }
  const auto statuses = tracker.evaluate();
  EXPECT_FALSE(statuses[0].breached);
  EXPECT_GT(statuses[0].worst_burn, 1.0) << "the LONG window still burns";
}

}  // namespace
}  // namespace pelican::obs
