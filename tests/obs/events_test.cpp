// obs events: the flight recorder's discrete half. The properties the
// journal contract promises:
//
//   - bounded: a fixed-capacity ring, O(1) eviction, evictions counted;
//   - resumable: seq is strictly increasing, since(seq) never replays;
//   - mergeable: fleet views tag sources and interleave by wall-clock.
#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace pelican::obs {
namespace {

TEST(EventJournalTest, EmitStampsAndSequences) {
  EventJournal journal;
  journal.emit(EventType::kQuarantine, "unix:/tmp/e0.sock", "timed out", 42);
  journal.emit(EventType::kUnquarantine, "unix:/tmp/e0.sock");

  const auto events = journal.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[0].type, EventType::kQuarantine);
  EXPECT_EQ(events[0].subject, "unix:/tmp/e0.sock");
  EXPECT_EQ(events[0].detail, "timed out");
  EXPECT_EQ(events[0].trace_id, 42u);
  EXPECT_GT(events[0].unix_ms, 0u) << "wall-clock stamped at emit";
  EXPECT_LE(events[0].unix_ms, events[1].unix_ms);
  EXPECT_TRUE(events[0].source.empty()) << "source is tagged by mergers";
}

TEST(EventJournalTest, RingEvictsOldestAndCountsDrops) {
  EventJournal journal(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    journal.emit(EventType::kPublish, "user " + std::to_string(i));
  }
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.capacity(), 3u);
  EXPECT_EQ(journal.dropped(), 2u);
  const auto events = journal.snapshot();
  EXPECT_EQ(events.front().seq, 3u) << "oldest two evicted";
  EXPECT_EQ(events.back().seq, 5u);
  // seq keeps climbing across evictions — a poller can detect the gap.
  journal.emit(EventType::kPublish, "user 5");
  EXPECT_EQ(journal.snapshot().back().seq, 6u);
}

TEST(EventJournalTest, SinceResumesWithoutReplay) {
  EventJournal journal;
  journal.emit(EventType::kHedgeWin, "a");
  journal.emit(EventType::kHedgeWin, "b");
  journal.emit(EventType::kHedgeWin, "c");
  const auto tail = journal.since(/*after_seq=*/2);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].subject, "c");
  EXPECT_TRUE(journal.since(99).empty());
}

TEST(EventJournalTest, ZeroCapacityJournalIsInert) {
  EventJournal journal(/*capacity=*/0);
  journal.emit(EventType::kFailover, "x");
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_TRUE(journal.snapshot().empty());
}

TEST(EventJournalTest, ClearEmptiesTheRing) {
  EventJournal journal;
  journal.emit(EventType::kPublish, "u");
  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
}

TEST(EventJournalTest, ConcurrentEmittersNeverDropWithinCapacity) {
  EventJournal journal(/*capacity=*/4096);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.emit(EventType::kDeadlineShed, "engine");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(journal.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_EQ(journal.snapshot().back().seq,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(EventMergeTest, MergeTagsSourcesAndSortInterleavesByWallClock) {
  // Two journals whose wall-clock ranges overlap; the merged view must
  // interleave by unix_ms, with seq as the per-journal tiebreak.
  std::vector<Event> merged;
  std::vector<Event> engine0 = {
      {1, 1000, EventType::kQuarantine, 0, "e1", "", ""},
      {2, 3000, EventType::kUnquarantine, 0, "e1", "", ""},
  };
  std::vector<Event> router = {
      {1, 2000, EventType::kHedgeWin, 7, "e0", "", "already-tagged"},
  };
  merge_events(merged, std::move(engine0), "unix:/tmp/e0.sock");
  merge_events(merged, std::move(router), "router");
  sort_events(merged);

  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].unix_ms, 1000u);
  EXPECT_EQ(merged[1].unix_ms, 2000u);
  EXPECT_EQ(merged[2].unix_ms, 3000u);
  EXPECT_EQ(merged[0].source, "unix:/tmp/e0.sock");
  EXPECT_EQ(merged[1].source, "already-tagged")
      << "merge only fills EMPTY sources";
}

TEST(EventTypeTest, EveryTypeHasAStableName) {
  for (std::uint8_t v = 0; v < kEventTypeCount; ++v) {
    const char* name = to_string(static_cast<EventType>(v));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "") << "type " << static_cast<int>(v);
    EXPECT_NE(std::string(name), "unknown") << "type " << static_cast<int>(v);
  }
  EXPECT_EQ(std::string(to_string(EventType::kQuarantine)), "quarantine");
  EXPECT_EQ(std::string(to_string(EventType::kHedgeWin)), "hedge_win");
}

}  // namespace
}  // namespace pelican::obs
