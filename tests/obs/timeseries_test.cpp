// obs timeseries: the flight recorder's continuous half. The properties the
// exposition stack depends on:
//
//   - delta_state is the EXACT interval: counter subtraction clamps at zero
//     across registry resets, histogram subtraction is bucket-wise;
//   - the store is a fixed-capacity ring per series — memory independent of
//     uptime, oldest points evicted first;
//   - the sampler derives rates and interval quantiles from consecutive
//     snapshots, skips quiet series, and survives a throwing source.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"

namespace pelican::obs {
namespace {

RegistryState state_of(Registry& registry) { return registry.state(); }

TEST(DeltaStateTest, CountersSubtractExactlyAndClampOnReset) {
  Registry older;
  older.counter("a").add(10);
  older.counter("gone").add(5);
  Registry newer;
  newer.counter("a").add(17);
  newer.counter("fresh").add(3);

  const RegistryState delta = delta_state(state_of(newer), state_of(older));
  ASSERT_EQ(delta.counters.size(), 2u);
  EXPECT_EQ(delta.counters[0].first, "a");
  EXPECT_EQ(delta.counters[0].second, 7u);
  // First sighting: the whole history is the interval.
  EXPECT_EQ(delta.counters[1].first, "fresh");
  EXPECT_EQ(delta.counters[1].second, 3u);

  // A counter that went BACKWARDS (engine restart) clamps to zero instead
  // of underflowing to ~2^64.
  const RegistryState reversed = delta_state(state_of(older), state_of(newer));
  for (const auto& [name, value] : reversed.counters) {
    if (name == "a") {
      EXPECT_EQ(value, 0u);
    }
  }
}

TEST(DeltaStateTest, HistogramDeltaIsTheExactIntervalDistribution) {
  Registry registry;
  Histogram& hist = registry.histogram("lat_ms");
  hist.observe(1.0);
  hist.observe(1.0);
  const RegistryState before = registry.state();
  hist.observe(100.0);
  hist.observe(100.0);
  hist.observe(100.0);
  const RegistryState after = registry.state();

  const RegistryState delta = delta_state(after, before);
  ASSERT_EQ(delta.histograms.size(), 1u);
  const HistogramState& interval = delta.histograms[0].second;
  EXPECT_EQ(interval.count, 3u);
  EXPECT_DOUBLE_EQ(interval.sum, 300.0);
  // The interval quantile reflects ONLY the interval's samples: all three
  // landed near 100, so p50 must be near 100, not dragged down by the
  // lifetime 1.0s.
  const double p50 = Histogram::percentile_of(interval, 50.0);
  EXPECT_NEAR(p50, 100.0, 100.0 * Histogram::kQuantileRelativeError);
}

TEST(DeltaStateTest, HistogramResetPassesTheNewSnapshotThroughWhole) {
  Registry before;
  before.histogram("lat_ms").observe(5.0);
  before.histogram("lat_ms").observe(5.0);
  Registry after;  // fresh registry: the engine restarted
  after.histogram("lat_ms").observe(2.0);

  const RegistryState delta =
      delta_state(after.state(), before.state());
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].second.count, 1u);
}

TEST(TimeSeriesStoreTest, RingEvictsOldestAtCapacity) {
  TimeSeriesStore store(/*capacity=*/3);
  for (std::uint64_t t = 1; t <= 5; ++t) {
    store.push("s", t, static_cast<double>(t) * 10.0);
  }
  const auto points = store.series("s");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points.front().unix_ms, 3u);
  EXPECT_EQ(points.back().unix_ms, 5u);
  EXPECT_DOUBLE_EQ(points.back().value, 50.0);
}

TEST(TimeSeriesStoreTest, SeriesSinceAndNamesAndSnapshot) {
  TimeSeriesStore store;
  store.push("b", 100, 1.0);
  store.push("a", 200, 2.0);
  store.push("b", 300, 3.0);

  EXPECT_TRUE(store.series("unknown").empty());
  const auto recent = store.series_since("b", 200);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].unix_ms, 300u);

  const auto names = store.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");

  const auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a");
  EXPECT_EQ(snapshot[1].second.size(), 2u);

  store.clear();
  EXPECT_TRUE(store.names().empty());
}

TEST(FleetSamplerTest, SampleNowDerivesRatesAndIntervalQuantiles) {
  Registry registry;
  FleetSampler sampler([&registry] { return registry.state(); },
                       FleetSamplerConfig{.interval_ms = 10.0});

  registry.counter("requests_total").add(100);
  sampler.sample_now();  // baseline: nothing derived yet
  EXPECT_EQ(sampler.ticks(), 1u);
  EXPECT_TRUE(sampler.store().series("requests_total_rate").empty());

  registry.counter("requests_total").add(50);
  registry.histogram("lat_ms").observe(4.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.sample_now();

  const auto rate = sampler.store().series("requests_total_rate");
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_GT(rate[0].value, 0.0) << "50 events over a positive interval";

  ASSERT_EQ(sampler.store().series("lat_ms_rate").size(), 1u);
  const auto p99 = sampler.store().series("lat_ms_p99");
  ASSERT_EQ(p99.size(), 1u);
  EXPECT_NEAR(p99[0].value, 4.0, 4.0 * Histogram::kQuantileRelativeError);

  // A quiet interval (no histogram samples) pushes no quantile points.
  sampler.sample_now();
  EXPECT_EQ(sampler.store().series("lat_ms_p99").size(), 1u);
}

TEST(FleetSamplerTest, BackgroundThreadTicksAndStops) {
  Registry registry;
  std::atomic<int> polls{0};
  FleetSampler sampler(
      [&] {
        polls.fetch_add(1);
        registry.counter("ticks_total").add(1);
        return registry.state();
      },
      FleetSamplerConfig{.interval_ms = 5.0});
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  while (sampler.ticks() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const std::uint64_t ticks_after_stop = sampler.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sampler.ticks(), ticks_after_stop) << "stop() ends the loop";
  EXPECT_GE(polls.load(), 5);
  EXPECT_FALSE(sampler.store().series("ticks_total_rate").empty());
}

TEST(FleetSamplerTest, OnSampleHookRunsAfterEveryTick) {
  Registry registry;
  FleetSampler sampler([&registry] { return registry.state(); });
  std::atomic<int> hooks{0};
  sampler.set_on_sample([&hooks] { hooks.fetch_add(1); });
  sampler.sample_now();
  sampler.sample_now();
  EXPECT_EQ(hooks.load(), 2);
}

TEST(FleetSamplerTest, ThrowingSourceCountsErrorsAndSkipsTheTick) {
  int calls = 0;
  FleetSampler sampler([&calls]() -> RegistryState {
    if (++calls % 2 == 1) throw std::runtime_error("fleet unreachable");
    return {};
  });
  sampler.sample_now();  // throws inside: counted, not propagated
  EXPECT_EQ(sampler.errors(), 1u);
  EXPECT_EQ(sampler.ticks(), 0u);
  sampler.sample_now();
  EXPECT_EQ(sampler.ticks(), 1u);
}

}  // namespace
}  // namespace pelican::obs
