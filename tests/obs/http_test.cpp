// obs http: the transport-free HTTP/1.1 half of the exposition server —
// head-completeness detection, request-line parsing, and response
// rendering. The socket-bound accept loop is tested in
// tests/router/obs_http_test over a real listener.
#include "obs/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pelican::obs {
namespace {

TEST(HttpHeadTest, CompleteOnCrlfCrlfOrLfLf) {
  EXPECT_FALSE(http_head_complete(""));
  EXPECT_FALSE(http_head_complete("GET / HTTP/1.1\r\n"));
  EXPECT_FALSE(http_head_complete("GET / HTTP/1.1\r\nHost: x\r\n"));
  EXPECT_TRUE(http_head_complete("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(http_head_complete("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_TRUE(http_head_complete("GET / HTTP/1.1\n\n"))
      << "bare LFLF tolerated for hand-typed clients";
}

TEST(HttpParseTest, RequestLineFieldsComeThroughVerbatim) {
  const auto request =
      parse_http_request("GET /metrics?since=5 HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/metrics?since=5");
  EXPECT_EQ(request->version, "HTTP/1.1");
}

TEST(HttpParseTest, MalformedHeadsAreRejected) {
  EXPECT_FALSE(parse_http_request("\r\n\r\n").has_value()) << "empty line";
  EXPECT_FALSE(parse_http_request("GET\r\n\r\n").has_value())
      << "missing target and version";
  EXPECT_FALSE(parse_http_request("GET /metrics\r\n\r\n").has_value())
      << "missing version";
  EXPECT_FALSE(parse_http_request("GET /metrics FTP/1.0\r\n\r\n").has_value())
      << "version must start with HTTP/";
  const std::string nul_head =
      std::string("GET /me") + '\0' + "trics HTTP/1.1\r\n\r\n";
  EXPECT_FALSE(parse_http_request(nul_head).has_value()) << "embedded NUL";
}

TEST(HttpStatusTest, CanonicalReasons) {
  EXPECT_STREQ(http_status_reason(200), "OK");
  EXPECT_STREQ(http_status_reason(400), "Bad Request");
  EXPECT_STREQ(http_status_reason(404), "Not Found");
  EXPECT_STREQ(http_status_reason(405), "Method Not Allowed");
  EXPECT_STREQ(http_status_reason(431), "Request Header Fields Too Large");
  EXPECT_STREQ(http_status_reason(500), "Internal Server Error");
  EXPECT_STREQ(http_status_reason(299), "Unknown");
}

TEST(HttpRenderTest, ResponseIsOneShotWithExactContentLength) {
  HttpResponse response;
  response.body = "ok\n";
  const std::string rendered = render_http_response(response);
  EXPECT_EQ(rendered.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(rendered.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(rendered.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(rendered.find("Connection: close\r\n"), std::string::npos);
  // Head/body split is exactly one blank line, body verbatim after it.
  const auto split = rendered.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(rendered.substr(split + 4), "ok\n");
}

TEST(HttpRenderTest, ErrorStatusCarriesItsReason) {
  const std::string rendered =
      render_http_response({404, "text/plain; charset=utf-8", "nope\n"});
  EXPECT_EQ(rendered.find("HTTP/1.1 404 Not Found\r\n"), 0u);
}

}  // namespace
}  // namespace pelican::obs
