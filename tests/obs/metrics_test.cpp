// obs metrics: the fixed-boundary log-bucket histogram behind every stage
// and latency metric. The properties the serving stack depends on:
//
//   - quantile estimates stay within the documented relative error bound;
//   - merges are EXACT (bucket-wise sums over compile-time-shared
//     boundaries), so fleet aggregation loses nothing;
//   - observe() is safe from any number of threads and never drops counts.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace pelican::obs {
namespace {

TEST(HistogramTest, CountsSumAndMaxAreExact) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.percentile(50.0), 0.0) << "empty histogram reads as zero";

  hist.observe(1.0);
  hist.observe(2.0);
  hist.observe(4.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.sum(), 7.0);
  EXPECT_DOUBLE_EQ(hist.max(), 4.0);
}

TEST(HistogramTest, QuantilesStayWithinTheDocumentedErrorBound) {
  // Values spanning the full tracked range [2^kMinExp, 2^kMaxExp): the
  // estimate must track the exact sample quantile to within
  // kQuantileRelativeError at every probe. (Outside that range only the
  // edge buckets apply — covered below.)
  Histogram hist;
  std::vector<double> values;
  double value = 2e-3;
  while (value < 2e5) {
    hist.observe(value);
    values.push_back(value);
    value *= 1.07;
  }
  std::sort(values.begin(), values.end());
  for (const double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const double exact = stats::percentile(values, q);
    const double estimate = hist.percentile(q);
    EXPECT_NEAR(estimate, exact, exact * Histogram::kQuantileRelativeError)
        << "q=" << q;
  }
}

TEST(HistogramTest, EstimatesNeverExceedTheTrackedMax) {
  Histogram hist;
  hist.observe(3.0);
  hist.observe(3.0);
  EXPECT_LE(hist.percentile(100.0), hist.max());
  EXPECT_LE(hist.percentile(99.0), hist.max());
}

TEST(HistogramTest, OutOfRangeAndGarbageValuesLandInEdgeBuckets) {
  Histogram hist;
  hist.observe(0.0);    // below the lowest boundary -> underflow bucket
  hist.observe(-5.0);   // negative -> underflow bucket
  hist.observe(1e30);   // beyond the top boundary -> overflow bucket
  const auto state = hist.state();
  EXPECT_EQ(state.count, 3u);
  EXPECT_EQ(state.buckets.front(), 2u);
  EXPECT_EQ(state.buckets.back(), 1u);
  // The overflow quantile falls back to the exactly-tracked max.
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 1e30);
}

TEST(HistogramTest, GarbageObservationsAreClampedAndCounted) {
  // Regression: a NaN latency (e.g. a 0/0 in a derived duration) used to
  // poison sum/max forever. Non-finite and negative inputs now clamp to
  // the underflow bucket and are tallied separately.
  Histogram hist;
  hist.observe(std::numeric_limits<double>::quiet_NaN());
  hist.observe(-3.0);
  hist.observe(-std::numeric_limits<double>::infinity());
  hist.observe(std::numeric_limits<double>::infinity());
  hist.observe(2.0);

  const auto state = hist.state();
  EXPECT_EQ(state.count, 5u) << "clamped observations still count";
  EXPECT_EQ(state.invalid, 4u);
  EXPECT_EQ(hist.invalid(), 4u);
  EXPECT_EQ(state.buckets.front(), 4u) << "all four in the underflow bucket";
  EXPECT_DOUBLE_EQ(state.sum, 2.0) << "garbage never reaches the sum";
  EXPECT_DOUBLE_EQ(state.max, 2.0) << "no more max=inf/NaN";
  EXPECT_TRUE(std::isfinite(hist.percentile(99.0)));

  // invalid survives state merges (fleet aggregation) like every other
  // histogram field.
  Histogram other;
  other.observe(-1.0);
  Histogram merged;
  merged.merge(state);
  merged.merge(other.state());
  EXPECT_EQ(merged.state().invalid, 5u);
}

TEST(HistogramTest, MergeIsTheExactBucketwiseSum) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 100; ++i) a.observe(static_cast<double>(i));
  for (int i = 1; i <= 100; ++i) b.observe(i * 1000.0);

  Histogram merged;
  merged.merge(a.state());
  merged.merge(b.state());

  const auto sa = a.state();
  const auto sb = b.state();
  const auto sm = merged.state();
  ASSERT_EQ(sm.buckets.size(), Histogram::kNumBuckets);
  for (std::size_t i = 0; i < sm.buckets.size(); ++i) {
    EXPECT_EQ(sm.buckets[i], sa.buckets[i] + sb.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(sm.count, 200u);
  EXPECT_DOUBLE_EQ(sm.sum, sa.sum + sb.sum);
  EXPECT_DOUBLE_EQ(sm.max, 100000.0);
}

TEST(HistogramTest, MergeRejectsForeignBucketLayouts) {
  HistogramState target;
  target.buckets.assign(Histogram::kNumBuckets, 0);
  HistogramState foreign;
  foreign.buckets.assign(7, 0);  // some other build's layout
  foreign.count = 1;
  EXPECT_THROW(target.merge(foreign), std::invalid_argument);
}

TEST(HistogramTest, ConcurrentObservesNeverDropCounts) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.observe(0.5 + t);  // different buckets per thread
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(hist.max(), 7.5);
}

TEST(RegistryTest, NamesResolveToStableReferences) {
  Registry registry;
  Counter& counter = registry.counter("requests_total");
  Histogram& hist = registry.histogram("stage_forward_ms");
  counter.add(2);
  registry.counter("requests_total").add(3);
  hist.observe(1.0);
  EXPECT_EQ(&registry.counter("requests_total"), &counter)
      << "hot paths resolve names once; the reference must stay valid";
  EXPECT_EQ(&registry.histogram("stage_forward_ms"), &hist);
  EXPECT_EQ(counter.value(), 5u);
}

TEST(RegistryTest, StateIsSortedAndMergeStateIsExact) {
  Registry a;
  a.counter("zeta").add(1);
  a.counter("alpha").add(2);
  a.histogram("lat_ms").observe(1.0);

  Registry b;
  b.counter("alpha").add(10);
  b.histogram("lat_ms").observe(1.0);
  b.histogram("other_ms").observe(4.0);

  RegistryState merged;
  merge_state(merged, a.state());
  merge_state(merged, b.state());

  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].first, "alpha");
  EXPECT_EQ(merged.counters[0].second, 12u);
  EXPECT_EQ(merged.counters[1].first, "zeta");
  EXPECT_EQ(merged.counters[1].second, 1u);

  ASSERT_EQ(merged.histograms.size(), 2u);
  EXPECT_EQ(merged.histograms[0].first, "lat_ms");
  EXPECT_EQ(merged.histograms[0].second.count, 2u);
  EXPECT_EQ(merged.histograms[1].first, "other_ms");
  EXPECT_EQ(merged.histograms[1].second.count, 1u);
}

}  // namespace
}  // namespace pelican::obs
