// obs export: the exposition renderings. The load-bearing details:
//
//   - Prometheus label VALUES escape backslash, quote, and newline exactly
//     per the text-format spec (a hostile engine address must not be able
//     to smuggle a label boundary or line break into /metrics);
//   - histogram garbage is surfaced: the summed
//     histogram_invalid_observations_total line appears whenever any
//     histogram is exported;
//   - the flight-recorder JSON payloads (events, timeseries, slos) escape
//     free-text fields and keep their documented shapes.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace pelican::obs {
namespace {

TEST(PrometheusEscapeTest, LabelValueEscapesExactlyTheSpecTriple) {
  EXPECT_EQ(prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label_value("a\nb"), "a\\nb");
  // The composite case every scraper's parser trips on.
  EXPECT_EQ(prometheus_escape_label_value("x\\\"\ny"), "x\\\\\\\"\\ny");
  // Other characters — including label-syntax bytes — pass through: only
  // backslash, quote, and newline are special inside a quoted label value.
  EXPECT_EQ(prometheus_escape_label_value("a{b},c=d"), "a{b},c=d");
}

TEST(PrometheusTextTest, EscapedLabelsProduceParseableLines) {
  Registry registry;
  registry.counter("requests_total").add(7);
  const std::string nasty = "unix:/tmp/\"quoted\"\nline\\path";
  const std::string text = prometheus_text(
      registry.state(),
      "engine=\"" + prometheus_escape_label_value(nasty) + "\"");
  // The raw newline must NOT survive into the exposition: every line is
  // one sample.
  EXPECT_EQ(text.find("\"\nline"), std::string::npos);
  EXPECT_NE(
      text.find("pelican_requests_total{engine=\"unix:/tmp/"
                "\\\"quoted\\\"\\nline\\\\path\"} 7\n"),
      std::string::npos)
      << text;
}

TEST(PrometheusTextTest, InvalidObservationsTotalIsSummedAcrossHistograms) {
  Registry registry;
  registry.histogram("a_ms").observe(std::numeric_limits<double>::quiet_NaN());
  registry.histogram("a_ms").observe(1.0);
  registry.histogram("b_ms").observe(-2.0);
  const std::string text = prometheus_text(registry.state(), "");
  EXPECT_NE(
      text.find("pelican_histogram_invalid_observations_total 2\n"),
      std::string::npos)
      << text;

  // Counter-only registries do not emit the line (no histograms to guard).
  Registry counters_only;
  counters_only.counter("x_total").add(1);
  EXPECT_EQ(prometheus_text(counters_only.state(), "")
                .find("histogram_invalid_observations_total"),
            std::string::npos);
}

TEST(EventsJsonTest, EscapesFreeTextAndKeepsShape) {
  std::vector<Event> events(1);
  events[0].seq = 3;
  events[0].unix_ms = 1700000000000;
  events[0].type = EventType::kQuarantine;
  events[0].trace_id = 99;
  events[0].subject = "unix:/tmp/\"e0\".sock";
  events[0].detail = "line1\nline2";
  events[0].source = "router";
  const std::string json = events_json(events);
  EXPECT_NE(json.find("\"seq\":3"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"quarantine\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":99"), std::string::npos);
  EXPECT_NE(json.find("\\\"e0\\\""), std::string::npos) << "quotes escaped";
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos)
      << "newline escaped";
  EXPECT_EQ(json.find('\n'), std::string::npos) << "payload is one line";
  EXPECT_EQ(events_json({}), "[]");
}

TEST(TimeseriesJsonTest, SeriesRenderAsNamedPointArrays) {
  TimeSeriesStore store;
  store.push("requests_total_rate", 1000, 12.5);
  store.push("requests_total_rate", 2000, 13.0);
  const std::string json = timeseries_json(store.snapshot());
  EXPECT_EQ(json,
            "{\"requests_total_rate\":"
            "[{\"t\":1000,\"v\":12.5},{\"t\":2000,\"v\":13}]}");
}

TEST(SlosJsonTest, StatusRendersBreachAndWindows) {
  SloStatus status;
  status.name = "predict-p99";
  status.series = "lat_ms_p99";
  status.target = 100.0;
  status.breached = true;
  status.worst_burn = 10.0;
  status.windows.push_back({10.0, 10.0, 20});
  const std::string json = slos_json(std::vector<SloStatus>{status});
  EXPECT_NE(json.find("\"name\":\"predict-p99\""), std::string::npos);
  EXPECT_NE(json.find("\"breached\":true"), std::string::npos);
  EXPECT_NE(json.find("\"worst_burn\":10"), std::string::npos);
  EXPECT_NE(json.find("{\"window_s\":10,\"burn\":10,\"samples\":20}"),
            std::string::npos);
}

}  // namespace
}  // namespace pelican::obs
