// obs tracing: id generation, span bookkeeping, and the bounded
// worst-N slow-request journal the kMetrics verb ships across the fleet.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <thread>
#include <vector>

namespace pelican::obs {
namespace {

TEST(TraceIdTest, IdsAreNonZeroAndDistinct) {
  // 0 means "untraced" everywhere (frames, sampling, span commits), so the
  // generator must never produce it — and collisions across a burst would
  // silently fuse unrelated requests into one trace.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t id = new_trace_id();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(TraceTest, StageNamesAreStableIdentifiers) {
  EXPECT_STREQ(to_string(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(to_string(Stage::kFailoverRetry), "failover_retry");
  EXPECT_STREQ(stage_metric_name(Stage::kForward), "stage_forward_ms");
  for (std::size_t s = 0; s < kStageCount; ++s) {
    EXPECT_STRNE(to_string(static_cast<Stage>(s)), "?")
        << "stage " << s << " is missing its wire/exposition name";
  }
}

TEST(TraceCollectorTest, RecordsSpansAndJournalsSlowestFirst) {
  TraceCollector collector;
  const std::array<Span, 2> spans = {{{Stage::kForward, 100, 50},
                                      {Stage::kRankTopK, 150, 25}}};
  const std::uint64_t fast = new_trace_id();
  const std::uint64_t slow = new_trace_id();
  collector.record(fast, spans);
  collector.finish(fast, 1.0);
  collector.record(slow, spans);
  collector.finish(slow, 9.0);

  const auto journal = collector.journal();
  ASSERT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal[0].trace_id, slow);
  EXPECT_DOUBLE_EQ(journal[0].total_ms, 9.0);
  EXPECT_EQ(journal[1].trace_id, fast);
  ASSERT_EQ(journal[0].spans.size(), 2u);
  EXPECT_EQ(journal[0].spans[0].stage, Stage::kForward);
  EXPECT_EQ(journal[0].spans[1].duration_ns, 25u);
}

TEST(TraceCollectorTest, JournalIsBoundedToTheWorstN) {
  TraceCollectorConfig config;
  config.journal_capacity = 4;
  TraceCollector collector(config);
  // 20 traces, total_ms 1..20: only the four slowest may survive.
  for (int i = 1; i <= 20; ++i) {
    const std::uint64_t id = new_trace_id();
    collector.record(id, std::array<Span, 1>{{{Stage::kForward, 0, 10}}});
    collector.finish(id, static_cast<double>(i));
  }
  const auto journal = collector.journal();
  ASSERT_EQ(journal.size(), 4u);
  EXPECT_DOUBLE_EQ(journal[0].total_ms, 20.0);
  EXPECT_DOUBLE_EQ(journal[3].total_ms, 17.0);
}

TEST(TraceCollectorTest, OpenTraceTableIsBounded) {
  TraceCollectorConfig config;
  config.max_open_traces = 8;
  config.journal_capacity = 64;
  TraceCollector collector(config);
  // Record spans for many ids that never finish: the open table must stay
  // bounded (FIFO eviction), not grow without limit under id churn.
  for (int i = 0; i < 1000; ++i) {
    collector.record(new_trace_id(),
                     std::array<Span, 1>{{{Stage::kEncode, 0, 1}}});
  }
  // A finish for a brand-new id still journals (with no spans attached).
  const std::uint64_t id = new_trace_id();
  collector.finish(id, 5.0);
  const auto journal = collector.journal();
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal[0].trace_id, id);
}

TEST(TraceCollectorTest, DisabledCollectorRecordsNothing) {
  TraceCollector collector;
  collector.set_enabled(false);
  const std::uint64_t id = new_trace_id();
  collector.record(id, std::array<Span, 1>{{{Stage::kForward, 0, 10}}});
  collector.finish(id, 50.0);
  EXPECT_TRUE(collector.journal().empty());

  collector.set_enabled(true);
  collector.finish(id, 50.0);
  EXPECT_EQ(collector.journal().size(), 1u);
}

TEST(TraceCollectorTest, ConcurrentRecordFinishIsSafe) {
  TraceCollector collector;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t id = new_trace_id();
        collector.record(id,
                         std::array<Span, 1>{{{Stage::kForward, 0, 100}}});
        collector.finish(id, 1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto journal = collector.journal();
  EXPECT_FALSE(journal.empty());
  EXPECT_LE(journal.size(), TraceCollectorConfig{}.journal_capacity);
}

}  // namespace
}  // namespace pelican::obs
