// Service-quality invariance of batched serving (ISSUE 2 acceptance): a
// batched forward of B windows must produce bit-identical predict_top_k
// results to B single-query forwards, for every privacy temperature. This
// holds because every kernel under forward() accumulates per-row in a fixed
// order (rows are only ever split across threads, never reduced across), and
// the top-k reduction is per-row — so coalescing requests can never change
// what any user is served.
#include <gtest/gtest.h>

#include <vector>

#include "serve/scheduler.hpp"
#include "serve_support.hpp"

namespace pelican::serve {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;

class BatchInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(BatchInvarianceTest, BatchedEqualsSingleQueries) {
  const double temperature = GetParam();
  constexpr std::size_t kBatch = 17;  // deliberately not a power of two
  constexpr std::size_t kK = 5;

  Rng rng(static_cast<std::uint64_t>(temperature * 1000) + 1);
  std::vector<mobility::Window> windows;
  windows.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    windows.push_back(random_window(rng));
  }

  // Two deployments of identical weights so the single-query path and the
  // batched path cannot share forward-pass caches by accident.
  auto single = tiny_deployment(2024, temperature);
  auto batched = tiny_deployment(2024, temperature);

  std::vector<std::vector<std::uint16_t>> expected;
  expected.reserve(kBatch);
  for (const auto& window : windows) {
    expected.push_back(single.predict_top_k(window, kK));
  }

  const auto actual = batched.predict_top_k_batch(windows, kK);
  ASSERT_EQ(actual.size(), kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    EXPECT_EQ(actual[i], expected[i])
        << "row " << i << " diverged at temperature " << temperature;
  }
  EXPECT_EQ(batched.query_count(), kBatch)
      << "a batch of B counts as B queries";
}

TEST_P(BatchInvarianceTest, SchedulerPathPreservesSingleQueryResults) {
  const double temperature = GetParam();
  constexpr std::size_t kRequests = 37;

  DeploymentRegistry registry(4);
  for (std::uint32_t user = 0; user < 3; ++user) {
    registry.deploy(user, tiny_deployment(user, temperature));
  }

  Rng rng(55);
  std::vector<PredictRequest> requests;
  requests.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests.push_back(
        {static_cast<std::uint32_t>(rng.below(3)), random_window(rng), 4});
  }

  std::vector<std::vector<std::uint16_t>> expected;
  expected.reserve(kRequests);
  for (const auto& request : requests) {
    expected.push_back(registry.with_model(
        request.user_id, [&](core::DeployedModel& model) {
          return model.predict_top_k(request.window, request.k);
        }));
  }

  BatchScheduler scheduler(registry, {.max_batch = 8});
  const auto responses = scheduler.serve(requests);
  ASSERT_EQ(responses.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(responses[i].ok);
    EXPECT_EQ(responses[i].locations, expected[i])
        << "request " << i << " diverged at temperature " << temperature;
  }
}

// The issue's required settings {1, 5, 10} plus the paper's strongest
// evaluated temperature; ranking happens in the log domain so the result
// must be exactly temperature-independent as well as batch-independent.
INSTANTIATE_TEST_SUITE_P(PrivacyTemperatures, BatchInvarianceTest,
                         ::testing::Values(1.0, 5.0, 10.0, 1e-3));

}  // namespace
}  // namespace pelican::serve
