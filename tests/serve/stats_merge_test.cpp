// ServerStats fleet-merge semantics (the router aggregates one State per
// engine process) and the empty-stats edge cases: an engine that has served
// nothing must snapshot to all-zero percentiles, and merging it must be a
// no-op — both previously implicit in stats::percentile's empty-span
// behavior, now pinned explicitly.
#include "serve/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace pelican::serve {
namespace {

TEST(StatsMergeTest, PercentileOfEmptyInputIsExplicitlyZero) {
  // The contract the empty-histogram snapshot path relies on.
  const std::vector<double> empty;
  EXPECT_EQ(stats::percentile(empty, 50.0), 0.0);
  EXPECT_EQ(stats::percentile(empty, 99.0), 0.0);
  EXPECT_EQ(stats::percentile(empty, 0.0), 0.0);
  EXPECT_EQ(stats::percentile(empty, 100.0), 0.0);
}

TEST(StatsMergeTest, EmptyStatsSnapshotIsAllZero) {
  ServerStats stats;
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.requests_served, 0u);
  EXPECT_EQ(snap.batches_run, 0u);
  EXPECT_EQ(snap.mean_batch_size, 0.0);
  EXPECT_TRUE(snap.batch_size_log2_histogram.empty());
  EXPECT_EQ(snap.p50_latency_ms, 0.0);
  EXPECT_EQ(snap.p99_latency_ms, 0.0);
  EXPECT_EQ(snap.max_latency_ms, 0.0);
}

TEST(StatsMergeTest, MergingEmptyStateIsANoOp) {
  ServerStats stats;
  stats.record_batch(4, 0.25);
  stats.record_request(10.0);
  const auto before = stats.snapshot();

  stats.merge(ServerStats{});  // freshly constructed: everything empty

  const auto after = stats.snapshot();
  EXPECT_EQ(after.requests_served, before.requests_served);
  EXPECT_EQ(after.batches_run, before.batches_run);
  EXPECT_EQ(after.batch_size_log2_histogram,
            before.batch_size_log2_histogram);
  EXPECT_EQ(after.p50_latency_ms, before.p50_latency_ms);
}

TEST(StatsMergeTest, MergeIntoEmptyReproducesTheSource) {
  ServerStats source;
  source.record_batch(8, 0.5);
  source.record_batch(1, 0.125);
  source.record_request(3.0);
  source.record_request(7.0);
  source.record_rejected();
  source.record_shed();
  source.record_queue_depth(17);

  ServerStats target;
  target.merge(source);

  const auto want = source.snapshot();
  const auto got = target.snapshot();
  EXPECT_EQ(got.requests_served, want.requests_served);
  EXPECT_EQ(got.requests_rejected, want.requests_rejected);
  EXPECT_EQ(got.requests_shed, want.requests_shed);
  EXPECT_EQ(got.peak_queue_depth, want.peak_queue_depth);
  EXPECT_EQ(got.batches_run, want.batches_run);
  EXPECT_EQ(got.mean_batch_size, want.mean_batch_size);
  EXPECT_EQ(got.max_batch_size, want.max_batch_size);
  EXPECT_EQ(got.batch_size_log2_histogram, want.batch_size_log2_histogram);
  EXPECT_EQ(got.total_forward_seconds, want.total_forward_seconds);
  EXPECT_EQ(got.p50_latency_ms, want.p50_latency_ms);
  EXPECT_EQ(got.p99_latency_ms, want.p99_latency_ms);
  EXPECT_EQ(got.max_latency_ms, want.max_latency_ms);
}

TEST(StatsMergeTest, FleetMergeComputesExactUnionPercentiles) {
  // Three "engines" with disjoint latency populations. The merged p50/p99
  // must equal the percentile of the UNION of samples — not any combination
  // of the per-engine percentiles.
  ServerStats engines[3];
  std::vector<double> all;
  for (int e = 0; e < 3; ++e) {
    for (int i = 0; i < 50; ++i) {
      const double latency = 1.0 + e * 100.0 + i;  // 1..50, 101..150, 201..250
      engines[e].record_request(latency);
      all.push_back(latency);
    }
    engines[e].record_batch(static_cast<std::size_t>(1) << e, 0.1);
    engines[e].record_queue_depth(static_cast<std::size_t>(3 - e));
  }

  ServerStats fleet;
  for (const auto& engine : engines) fleet.merge(engine.state());

  const auto snap = fleet.snapshot();
  EXPECT_EQ(snap.requests_served, 150u);
  EXPECT_EQ(snap.batches_run, 3u);
  EXPECT_EQ(snap.max_batch_size, 4u);
  EXPECT_EQ(snap.peak_queue_depth, 3u)
      << "queues are per-process: fleet peak is the max, not the sum";
  EXPECT_DOUBLE_EQ(snap.p50_latency_ms, stats::percentile(all, 50.0));
  EXPECT_DOUBLE_EQ(snap.p99_latency_ms, stats::percentile(all, 99.0));
  // Histograms add bucket-wise: one batch each of size 1, 2, 4.
  EXPECT_EQ(snap.batch_size_log2_histogram,
            (std::vector<std::size_t>{1, 1, 1}));
}

TEST(StatsMergeTest, ConcurrentMergeAndRecordStaysConsistent) {
  ServerStats target;
  ServerStats source;
  for (int i = 0; i < 100; ++i) source.record_request(1.0);

  std::thread recorder([&] {
    for (int i = 0; i < 1000; ++i) target.record_request(2.0);
  });
  std::thread merger([&] {
    for (int i = 0; i < 10; ++i) target.merge(source);
  });
  recorder.join();
  merger.join();

  EXPECT_EQ(target.snapshot().requests_served, 1000u + 10u * 100u);
}

}  // namespace
}  // namespace pelican::serve
