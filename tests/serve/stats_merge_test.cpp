// ServerStats fleet-merge semantics (the router aggregates one State per
// engine process) and the empty-stats edge cases: an engine that has served
// nothing must snapshot to all-zero percentiles, and merging it must be a
// no-op — both previously implicit in stats::percentile's empty-span
// behavior, now pinned explicitly.
#include "serve/stats.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace pelican::serve {
namespace {

TEST(StatsMergeTest, PercentileOfEmptyInputIsExplicitlyZero) {
  // The contract the empty-histogram snapshot path relies on.
  const std::vector<double> empty;
  EXPECT_EQ(stats::percentile(empty, 50.0), 0.0);
  EXPECT_EQ(stats::percentile(empty, 99.0), 0.0);
  EXPECT_EQ(stats::percentile(empty, 0.0), 0.0);
  EXPECT_EQ(stats::percentile(empty, 100.0), 0.0);
}

TEST(StatsMergeTest, EmptyStatsSnapshotIsAllZero) {
  ServerStats stats;
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.requests_served, 0u);
  EXPECT_EQ(snap.batches_run, 0u);
  EXPECT_EQ(snap.mean_batch_size, 0.0);
  EXPECT_TRUE(snap.batch_size_log2_histogram.empty());
  EXPECT_EQ(snap.p50_latency_ms, 0.0);
  EXPECT_EQ(snap.p99_latency_ms, 0.0);
  EXPECT_EQ(snap.max_latency_ms, 0.0);
}

TEST(StatsMergeTest, MergingEmptyStateIsANoOp) {
  ServerStats stats;
  stats.record_batch(4, 0.25);
  stats.record_request(10.0);
  const auto before = stats.snapshot();

  stats.merge(ServerStats{});  // freshly constructed: everything empty

  const auto after = stats.snapshot();
  EXPECT_EQ(after.requests_served, before.requests_served);
  EXPECT_EQ(after.batches_run, before.batches_run);
  EXPECT_EQ(after.batch_size_log2_histogram,
            before.batch_size_log2_histogram);
  EXPECT_EQ(after.p50_latency_ms, before.p50_latency_ms);
}

TEST(StatsMergeTest, MergeIntoEmptyReproducesTheSource) {
  ServerStats source;
  source.record_batch(8, 0.5);
  source.record_batch(1, 0.125);
  source.record_request(3.0);
  source.record_request(7.0);
  source.record_rejected();
  source.record_shed();
  source.record_queue_depth(17);

  ServerStats target;
  target.merge(source);

  const auto want = source.snapshot();
  const auto got = target.snapshot();
  EXPECT_EQ(got.requests_served, want.requests_served);
  EXPECT_EQ(got.requests_rejected, want.requests_rejected);
  EXPECT_EQ(got.requests_shed, want.requests_shed);
  EXPECT_EQ(got.peak_queue_depth, want.peak_queue_depth);
  EXPECT_EQ(got.batches_run, want.batches_run);
  EXPECT_EQ(got.mean_batch_size, want.mean_batch_size);
  EXPECT_EQ(got.max_batch_size, want.max_batch_size);
  EXPECT_EQ(got.batch_size_log2_histogram, want.batch_size_log2_histogram);
  EXPECT_EQ(got.total_forward_seconds, want.total_forward_seconds);
  EXPECT_EQ(got.p50_latency_ms, want.p50_latency_ms);
  EXPECT_EQ(got.p99_latency_ms, want.p99_latency_ms);
  EXPECT_EQ(got.max_latency_ms, want.max_latency_ms);
}

TEST(StatsMergeTest, FleetMergeIsTheExactBucketwiseSum) {
  // Three "engines" with disjoint latency populations. The merged latency
  // histogram must be the element-wise sum of the per-engine buckets —
  // PR 7 replaced the unbounded raw-sample vector with a fixed-boundary
  // log-bucket histogram, and the merge being exact (not approximate) is
  // the property that makes fleet aggregation trustworthy.
  ServerStats engines[3];
  std::vector<double> all;
  for (int e = 0; e < 3; ++e) {
    for (int i = 0; i < 50; ++i) {
      const double latency = 1.0 + e * 100.0 + i;  // 1..50, 101..150, 201..250
      engines[e].record_request(latency);
      all.push_back(latency);
    }
    engines[e].record_batch(static_cast<std::size_t>(1) << e, 0.1);
    engines[e].record_queue_depth(static_cast<std::size_t>(3 - e));
  }

  ServerStats fleet;
  for (const auto& engine : engines) fleet.merge(engine.state());

  const auto snap = fleet.snapshot();
  EXPECT_EQ(snap.requests_served, 150u);
  EXPECT_EQ(snap.batches_run, 3u);
  EXPECT_EQ(snap.max_batch_size, 4u);
  EXPECT_EQ(snap.peak_queue_depth, 3u)
      << "queues are per-process: fleet peak is the max, not the sum";

  // Exact merge: fleet bucket b == sum over engines of bucket b, for all b.
  const auto fleet_latency = fleet.state().latency;
  ASSERT_EQ(fleet_latency.buckets.size(), obs::Histogram::kNumBuckets);
  std::vector<std::uint64_t> expected(obs::Histogram::kNumBuckets, 0);
  double expected_sum = 0.0;
  for (const auto& engine : engines) {
    const auto state = engine.state().latency;
    ASSERT_EQ(state.buckets.size(), obs::Histogram::kNumBuckets);
    for (std::size_t b = 0; b < state.buckets.size(); ++b) {
      expected[b] += state.buckets[b];
    }
    expected_sum += state.sum;
  }
  EXPECT_EQ(fleet_latency.buckets, expected);
  EXPECT_EQ(fleet_latency.count, 150u);
  EXPECT_DOUBLE_EQ(fleet_latency.sum, expected_sum);
  EXPECT_DOUBLE_EQ(fleet_latency.max, 250.0);

  // Percentiles are now bucket estimates: within the documented relative
  // error bound of the exact union percentile (2^(1/8) - 1, ~9.1%).
  const double exact_p50 = stats::percentile(all, 50.0);
  const double exact_p99 = stats::percentile(all, 99.0);
  EXPECT_NEAR(snap.p50_latency_ms, exact_p50,
              exact_p50 * obs::Histogram::kQuantileRelativeError);
  EXPECT_NEAR(snap.p99_latency_ms, exact_p99,
              exact_p99 * obs::Histogram::kQuantileRelativeError);

  // Histograms add bucket-wise: one batch each of size 1, 2, 4.
  EXPECT_EQ(snap.batch_size_log2_histogram,
            (std::vector<std::size_t>{1, 1, 1}));
}

TEST(StatsMergeTest, PercentileErrorStaysWithinDocumentedBound) {
  // A spread of magnitudes (0.01ms .. ~1000ms): every estimated quantile
  // must sit within kQuantileRelativeError of the exact sample quantile.
  ServerStats server;
  std::vector<double> all;
  double value = 0.01;
  for (int i = 0; i < 400; ++i) {
    server.record_request(value);
    all.push_back(value);
    value *= 1.03;
  }
  const auto snap = server.snapshot();
  const double exact_p50 = stats::percentile(all, 50.0);
  const double exact_p99 = stats::percentile(all, 99.0);
  EXPECT_NEAR(snap.p50_latency_ms, exact_p50,
              exact_p50 * obs::Histogram::kQuantileRelativeError);
  EXPECT_NEAR(snap.p99_latency_ms, exact_p99,
              exact_p99 * obs::Histogram::kQuantileRelativeError);
  EXPECT_LE(snap.p99_latency_ms, snap.max_latency_ms)
      << "estimates must never exceed the exactly-tracked max";
}

TEST(StatsMergeTest, ConcurrentMergeAndRecordStaysConsistent) {
  ServerStats target;
  ServerStats source;
  for (int i = 0; i < 100; ++i) source.record_request(1.0);

  std::thread recorder([&] {
    for (int i = 0; i < 1000; ++i) target.record_request(2.0);
  });
  std::thread merger([&] {
    for (int i = 0; i < 10; ++i) target.merge(source);
  });
  recorder.join();
  merger.join();

  EXPECT_EQ(target.snapshot().requests_served, 1000u + 10u * 100u);
}

}  // namespace
}  // namespace pelican::serve
