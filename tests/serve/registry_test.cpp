#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "serve_support.hpp"

namespace pelican::serve {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;
using pelican::serve_testing::tiny_model;

TEST(DeploymentRegistryTest, DeployContainsEraseSize) {
  DeploymentRegistry registry(4);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.contains(7));

  registry.deploy(7, tiny_deployment(1));
  registry.deploy(9, tiny_deployment(2));
  EXPECT_TRUE(registry.contains(7));
  EXPECT_TRUE(registry.contains(9));
  EXPECT_EQ(registry.size(), 2u);

  EXPECT_TRUE(registry.erase(7));
  EXPECT_FALSE(registry.erase(7)) << "second erase finds nothing";
  EXPECT_FALSE(registry.contains(7));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(DeploymentRegistryTest, DeployReplacesExistingDeployment) {
  DeploymentRegistry registry(2);
  registry.deploy(1, tiny_deployment(1, /*temperature=*/1.0));
  registry.deploy(1, tiny_deployment(2, /*temperature=*/1e-3));
  EXPECT_EQ(registry.size(), 1u);
  const double temperature = registry.with_model(
      1, [](core::DeployedModel& model) { return model.temperature(); });
  EXPECT_DOUBLE_EQ(temperature, 1e-3);
}

TEST(DeploymentRegistryTest, WithModelThrowsForUnknownUser) {
  DeploymentRegistry registry(4);
  registry.deploy(1, tiny_deployment(1));
  EXPECT_THROW(
      registry.with_model(2, [](core::DeployedModel&) { return 0; }),
      std::out_of_range);
}

TEST(DeploymentRegistryTest, ShardingCoversAllShardsAndIsStable) {
  DeploymentRegistry registry(8);
  std::set<std::size_t> used;
  for (std::uint32_t user = 0; user < 1000; ++user) {
    const std::size_t shard = registry.shard_of(user);
    EXPECT_LT(shard, registry.shard_count());
    EXPECT_EQ(shard, registry.shard_of(user)) << "stable per user";
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), registry.shard_count())
      << "1000 sequential users should touch every one of 8 shards";
}

TEST(DeploymentRegistryTest, ZeroShardsClampsToOne) {
  DeploymentRegistry registry(0);
  EXPECT_EQ(registry.shard_count(), 1u);
  registry.deploy(3, tiny_deployment(1));
  EXPECT_TRUE(registry.contains(3));
}

TEST(DeploymentRegistryTest, UserIdsSortedAcrossShards) {
  DeploymentRegistry registry(8);
  for (const std::uint32_t user : {42u, 7u, 1000000u, 0u, 8u}) {
    registry.deploy(user, tiny_deployment(user));
  }
  EXPECT_EQ(registry.user_ids(),
            (std::vector<std::uint32_t>{0, 7, 8, 42, 1000000}));
}

TEST(DeploymentRegistryTest, SwapModelInstallsReplacement) {
  DeploymentRegistry registry(4);
  registry.deploy(5, tiny_deployment(1));

  Rng rng(123);
  const auto window = random_window(rng);
  std::size_t queries_before = 0;
  const auto before = registry.with_model(5, [&](core::DeployedModel& model) {
    auto top = model.predict_top_k(window, 3);
    queries_before = model.query_count();
    return top;
  });

  registry.swap_model(5, tiny_model(99));
  const auto after = registry.with_model(5, [&](core::DeployedModel& model) {
    // The replacement keeps the deployment's identity: spec, privacy, site,
    // and the cumulative query count all carry over.
    EXPECT_GE(model.query_count(), queries_before);
    return model.predict_top_k(window, 3);
  });
  // Different random weights rank differently with overwhelming probability;
  // equality here would mean the swap silently kept the old model.
  EXPECT_NE(before, after);

  EXPECT_THROW(registry.swap_model(6, tiny_model(1)), std::out_of_range);
}

TEST(DeploymentRegistryTest, DeployReturnsStableHandle) {
  DeploymentRegistry registry(4);
  const DeploymentHandle handle = registry.deploy(9, tiny_deployment(1));
  ASSERT_TRUE(handle);

  Rng rng(5);
  const auto window = random_window(rng);
  const auto before = handle.with_model([&](core::DeployedModel& model) {
    return model.predict_top_k(window, 3);
  });

  // Re-deploying the same user installs into the SAME slot: the old handle
  // observes the new model, and the slot's cumulative query count (1 from
  // `before`) is added to the fresh deployment's.
  registry.deploy(9, tiny_deployment(2));
  EXPECT_EQ(handle.snapshot()->query_count(), 1u);
  const auto after = handle.with_model([&](core::DeployedModel& model) {
    return model.predict_top_k(window, 3);
  });
  EXPECT_NE(before, after);
  EXPECT_EQ(registry.size(), 1u);

  // erase() unlists the user but existing handles keep working.
  EXPECT_TRUE(registry.erase(9));
  EXPECT_FALSE(registry.contains(9));
  EXPECT_NO_THROW((void)handle.with_model(
      [&](core::DeployedModel& model) { return model.num_classes(); }));

  EXPECT_FALSE(registry.find_handle(9));
  EXPECT_THROW((void)registry.handle(9), std::out_of_range);
  const DeploymentHandle empty;
  EXPECT_FALSE(empty);
  EXPECT_THROW((void)empty.snapshot(), std::logic_error);
}

TEST(DeploymentRegistryTest, PublishInstallsStoreVersion) {
  DeploymentRegistry registry(4);
  registry.deploy(5, tiny_deployment(1));

  // publish without an attached store is a usage error.
  EXPECT_THROW(registry.publish(5, 1), std::logic_error);

  auto model_store = std::make_shared<store::ModelStore>();
  model_store->put({"personal", 5, 2}, tiny_model(42));
  registry.attach_store(model_store, "personal");

  EXPECT_THROW(registry.publish(7, 2), std::out_of_range)
      << "unknown user";
  EXPECT_THROW(registry.publish(5, 3), std::out_of_range)
      << "unknown store version";

  registry.publish(5, 2);
  const auto snapshot = registry.handle(5).snapshot();
  EXPECT_EQ(snapshot->model_version(), 2u);

  // The published deployment serves exactly the stored model's outputs.
  Rng rng(9);
  const auto window = random_window(rng);
  auto reference = tiny_deployment(42);
  const auto expected = reference.predict_top_k(window, 3);
  const auto served = registry.with_model(5, [&](core::DeployedModel& model) {
    return model.predict_top_k(window, 3);
  });
  EXPECT_EQ(served, expected);
}

TEST(DeploymentRegistryTest, AdoptHostedSubsumesCloudHosting) {
  core::CloudServer cloud;
  cloud.host_personalized(3, tiny_deployment(3, 1e-3));
  cloud.host_personalized(4, tiny_deployment(4));

  DeploymentRegistry registry(4);
  EXPECT_EQ(registry.adopt_hosted(cloud), 2u);
  EXPECT_TRUE(registry.contains(3));
  EXPECT_TRUE(registry.contains(4));
  const double temperature = registry.with_model(
      3, [](core::DeployedModel& model) { return model.temperature(); });
  EXPECT_DOUBLE_EQ(temperature, 1e-3);

  EXPECT_FALSE(cloud.hosts_user(3)) << "the cloud tier hands ownership over";
  EXPECT_EQ(registry.adopt_hosted(cloud), 0u) << "nothing left to adopt";
}

TEST(DeploymentRegistryTest, ConcurrentDeployAndQueryAcrossShards) {
  DeploymentRegistry registry(8);
  constexpr std::uint32_t kUsersPerThread = 25;
  constexpr std::size_t kThreads = 4;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Rng rng(777 + t);
      for (std::uint32_t i = 0; i < kUsersPerThread; ++i) {
        const auto user =
            static_cast<std::uint32_t>(t * kUsersPerThread + i);
        registry.deploy(user, serve_testing::tiny_deployment(user));
        const auto window = random_window(rng);
        const auto top =
            registry.with_model(user, [&](core::DeployedModel& model) {
              return model.predict_top_k(window, 3);
            });
        EXPECT_EQ(top.size(), 3u);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.size(), kThreads * kUsersPerThread);
}

}  // namespace
}  // namespace pelican::serve
