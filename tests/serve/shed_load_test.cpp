// QueuePolicy::kShedOldest under concurrent submit/drain — the load-test
// counterpart of admission_test's deterministic parked-queue cases (block
// and reject already have dedicated load tests; shed_oldest only had the
// parked one).
//
// Multiple submitter threads flood a small queue while the drainer runs at
// full speed, so sheds race live drains: a request picked as the shed
// victim may be mid-flight to a drain, and a drain may empty the queue
// between the policy check and the push. The invariants that must survive
// that race:
//
//   1. Every future resolves (no request is ever lost or left hanging).
//   2. Every response is either served ok or marked rejected — and exactly
//      the rejected ones are counted by stats (requests_shed), exactly the
//      served ones by requests_served.
//   3. The queue bound holds (peak depth never exceeds max_queue plus the
//      one straggler each concurrent submitter can land after a drain).
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "serve_support.hpp"

namespace pelican::serve {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;

TEST(ShedOldestLoadTest, ConcurrentSubmitAndDrainAccountsForEveryRequest) {
  constexpr std::size_t kUsers = 4;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 300;
  constexpr std::size_t kMaxQueue = 8;

  DeploymentRegistry registry(/*shards=*/4);
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    registry.deploy(user, tiny_deployment(user));
  }

  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::size_t> shed_count{0};
  ServerStats::Snapshot snap;
  {
    BatchScheduler scheduler(
        registry, {.max_batch = 4,
                   .max_delay = std::chrono::microseconds(100),
                   .max_queue = kMaxQueue,
                   .policy = QueuePolicy::kShedOldest});

    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        Rng rng(1000 + t);
        std::vector<std::future<PredictResponse>> futures;
        futures.reserve(kPerThread);
        for (std::size_t i = 0; i < kPerThread; ++i) {
          futures.push_back(scheduler.submit(
              {static_cast<std::uint32_t>(rng.below(kUsers)),
               random_window(rng), 3}));
        }
        for (auto& future : futures) {
          // Invariant 1: every submitted request resolves.
          ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
                    std::future_status::ready)
              << "a shed or served request must always resolve its future";
          const auto response = future.get();
          if (response.ok) {
            EXPECT_FALSE(response.rejected);
            EXPECT_FALSE(response.locations.empty());
            ok_count.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Every user is deployed, so the only not-ok outcome here is
            // admission shedding (or the shutdown race, also `rejected`).
            EXPECT_TRUE(response.rejected);
            EXPECT_TRUE(response.locations.empty());
            shed_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& thread : submitters) thread.join();
    snap = scheduler.stats().snapshot();
  }

  const std::size_t total = kThreads * kPerThread;
  // Invariant 2: exact accounting, both caller-side and stats-side.
  EXPECT_EQ(ok_count.load() + shed_count.load(), total);
  EXPECT_EQ(snap.requests_served, ok_count.load());
  EXPECT_EQ(snap.requests_shed, shed_count.load());
  EXPECT_EQ(snap.requests_rejected, 0u)
      << "no unknown users in this workload";
  // Invariant 3: the bound held under concurrency.
  EXPECT_LE(snap.peak_queue_depth, kMaxQueue + kThreads)
      << "shed_oldest must keep the queue at its bound (one straggler per "
         "concurrent submitter can land after a drain empties it)";
  // The flood (4 fast submitters vs a tiny queue with a 100us drain delay)
  // must actually have exercised shedding, or this test proves nothing.
  EXPECT_GT(shed_count.load(), 0u)
      << "workload failed to overload the queue; shrink max_queue";
}

}  // namespace
}  // namespace pelican::serve
