// Regression test for peak-queue-depth tracking (PR 7 satellite). The old
// implementation observed queue_.size() after releasing the queue lock, so
// a concurrent drain could empty the queue between push and observation and
// the recorded peak under-reported the true depth. The fix records the peak
// INSIDE the submit critical section via a lock-free CAS-max.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve_support.hpp"

namespace pelican::serve {
namespace {

using serve_testing::random_window;
using serve_testing::tiny_deployment;
using serve_testing::tiny_spec;

TEST(QueueDepthTest, PeakEqualsQueuedCountWhenNoDrainCanFire) {
  // Deterministic depth: max_batch and max_delay are large enough that the
  // drainer holds for stragglers while K threads submit, so the queue MUST
  // reach exactly K before the first drain — any smaller recorded peak is
  // the old unlock-then-observe race.
  DeploymentRegistry registry;
  registry.deploy(1, tiny_deployment(7));
  Rng rng(21);
  const mobility::Window window = random_window(rng);

  constexpr std::size_t kSubmitters = 24;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::future<PredictResponse>> futures(kSubmitters);
    {
      // max_batch is unreachable and max_delay far beyond the submit burst,
      // so the drainer is guaranteed to hold until all K requests are
      // queued; the scheduler destructor then drains and answers them.
      BatchScheduler scheduler(
          registry, {.max_batch = kSubmitters * 2,
                     .max_delay = std::chrono::seconds(30)});

      std::vector<std::thread> threads;
      threads.reserve(kSubmitters);
      std::atomic<std::size_t> ready{0};
      std::atomic<bool> go{false};
      for (std::size_t t = 0; t < kSubmitters; ++t) {
        threads.emplace_back([&, t] {
          ready.fetch_add(1);
          while (!go.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
          }
          futures[t] = scheduler.submit({1, window, 3});
        });
      }
      while (ready.load() != kSubmitters) {
        std::this_thread::yield();
      }
      go.store(true);
      for (auto& thread : threads) thread.join();

      EXPECT_EQ(scheduler.stats().snapshot().peak_queue_depth, kSubmitters)
          << "round " << round
          << ": peak must be observed inside the submit critical section";
    }
    for (auto& future : futures) {
      ASSERT_TRUE(future.get().ok);
    }
  }
}

TEST(QueueDepthTest, PeakNeverExceedsTrueDepthUnderSubmitDrainHammer) {
  // Open-loop hammer: many submitters against an eagerly-draining scheduler
  // (max_batch 1, zero delay). The peak can legitimately land anywhere in
  // [1, total], but it must never exceed what was ever simultaneously
  // queued — bounded above by the number of in-flight submitters.
  DeploymentRegistry registry;
  registry.deploy(1, tiny_deployment(9));
  Rng rng(22);
  const mobility::Window window = random_window(rng);

  BatchScheduler scheduler(registry,
                           {.max_batch = 1,
                            .max_delay = std::chrono::microseconds(0)});
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  std::vector<std::vector<std::future<PredictResponse>>> futures(kSubmitters);
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      futures[t].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(scheduler.submit({1, window, 3}));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (auto& slice : futures) {
    for (auto& future : slice) {
      ASSERT_TRUE(future.get().ok);
    }
  }

  const auto snap = scheduler.stats().snapshot();
  EXPECT_GE(snap.peak_queue_depth, 1u);
  EXPECT_LE(snap.peak_queue_depth, kSubmitters * kPerThread);
  EXPECT_EQ(snap.requests_served, kSubmitters * kPerThread);
}

}  // namespace
}  // namespace pelican::serve
