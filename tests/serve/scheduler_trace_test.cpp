// BatchScheduler tracing: sampled local traces, caller-stamped ids, the
// stage histograms behind pelican_statsz, and the instrumentation kill
// switch. The engine-side half of the PR 7 end-to-end tracing contract
// (the cross-process half lives in tests/router/fleet_process_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve_support.hpp"

namespace pelican::serve {
namespace {

using serve_testing::random_window;
using serve_testing::tiny_deployment;

std::vector<PredictRequest> make_requests(std::size_t n, Rng& rng) {
  std::vector<PredictRequest> requests;
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    requests.push_back({1, random_window(rng), 3});
  }
  return requests;
}

TEST(SchedulerTraceTest, StampedIdRecordsEngineStageSpans) {
  DeploymentRegistry registry;
  registry.deploy(1, tiny_deployment(3));
  BatchScheduler scheduler(registry, {.max_batch = 4});

  Rng rng(31);
  auto requests = make_requests(4, rng);
  const std::uint64_t id = obs::new_trace_id();
  for (auto& request : requests) request.trace_id = id;

  const auto responses = scheduler.serve(requests);
  for (const auto& response : responses) ASSERT_TRUE(response.ok);

  const auto journal = scheduler.traces().journal();
  ASSERT_FALSE(journal.empty());
  const auto it = std::find_if(
      journal.begin(), journal.end(),
      [&](const obs::TraceRecord& rec) { return rec.trace_id == id; });
  ASSERT_NE(it, journal.end()) << "the caller-stamped id must be preserved";
  EXPECT_GE(it->spans.size(), 6u)
      << "admission, queue wait, batch assembly, encode, forward, rank";
  for (const obs::Stage stage :
       {obs::Stage::kQueueWait, obs::Stage::kBatchAssembly,
        obs::Stage::kEncode, obs::Stage::kForward, obs::Stage::kRankTopK}) {
    EXPECT_TRUE(std::any_of(it->spans.begin(), it->spans.end(),
                            [&](const obs::Span& span) {
                              return span.stage == stage;
                            }))
        << "missing stage " << obs::to_string(stage);
  }
  EXPECT_GT(it->total_ms, 0.0);

  // The same traffic fed the stage histograms the kMetrics verb exports.
  const auto state = scheduler.metrics().state();
  const auto hist = std::find_if(
      state.histograms.begin(), state.histograms.end(), [](const auto& entry) {
        return entry.first == obs::stage_metric_name(obs::Stage::kForward);
      });
  ASSERT_NE(hist, state.histograms.end());
  EXPECT_GT(hist->second.count, 0u);
}

TEST(SchedulerTraceTest, SamplingTracesEveryNthLocalRequest) {
  DeploymentRegistry registry;
  registry.deploy(1, tiny_deployment(4));
  BatchScheduler scheduler(registry,
                           {.max_batch = 1, .trace_sample_every = 4});

  Rng rng(32);
  const auto responses = scheduler.serve(make_requests(16, rng));
  for (const auto& response : responses) ASSERT_TRUE(response.ok);

  // 16 untraced requests at 1-in-4 sampling: exactly 4 sampled traces.
  EXPECT_EQ(scheduler.traces().journal().size(), 4u);
}

TEST(SchedulerTraceTest, DisabledInstrumentationRecordsNoTraces) {
  DeploymentRegistry registry;
  registry.deploy(1, tiny_deployment(5));
  BatchScheduler scheduler(registry,
                           {.max_batch = 2, .trace_sample_every = 1});
  scheduler.set_instrumentation(false);
  EXPECT_FALSE(scheduler.instrumentation_enabled());

  Rng rng(33);
  auto requests = make_requests(8, rng);
  requests.front().trace_id = obs::new_trace_id();  // even a stamped id
  const auto responses = scheduler.serve(requests);
  for (const auto& response : responses) ASSERT_TRUE(response.ok);

  EXPECT_TRUE(scheduler.traces().journal().empty());
  const auto state = scheduler.metrics().state();
  for (const auto& [name, hist] : state.histograms) {
    EXPECT_EQ(hist.count, 0u) << name << " observed while disabled";
  }
  // ServerStats is deliberately NOT gated by the switch.
  EXPECT_EQ(scheduler.stats().snapshot().requests_served, 8u);
}

TEST(SchedulerTraceTest, SubmitPathTracesQueueWait) {
  DeploymentRegistry registry;
  registry.deploy(1, tiny_deployment(6));
  BatchScheduler scheduler(
      registry, {.max_batch = 4,
                 .max_delay = std::chrono::microseconds(2000),
                 .trace_sample_every = 1});

  Rng rng(34);
  PredictRequest request{1, random_window(rng), 3};
  auto future = scheduler.submit(request);
  ASSERT_TRUE(future.get().ok);

  const auto journal = scheduler.traces().journal();
  ASSERT_EQ(journal.size(), 1u);
  const auto& spans = journal[0].spans;
  const auto wait = std::find_if(
      spans.begin(), spans.end(), [](const obs::Span& span) {
        return span.stage == obs::Stage::kQueueWait;
      });
  ASSERT_NE(wait, spans.end());
  EXPECT_GT(wait->start_ns, 0u)
      << "submit-path queue wait starts at the admission timestamp";
}

}  // namespace
}  // namespace pelican::serve
