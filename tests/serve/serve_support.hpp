// Shared helpers for serve-layer tests: tiny untrained deployments (weights
// are random but deterministic — serving correctness is about routing,
// batching, and ranking invariance, none of which need a trained model).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/service.hpp"
#include "mobility/dataset.hpp"
#include "nn/model.hpp"

namespace pelican::serve_testing {

inline constexpr std::size_t kLocations = 10;
inline constexpr std::size_t kHidden = 8;

inline mobility::EncodingSpec tiny_spec() {
  return {mobility::SpatialLevel::kBuilding, kLocations};
}

/// Deterministic per-seed model so distinct users can have distinct weights.
inline nn::SequenceClassifier tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  return nn::make_one_layer_lstm(tiny_spec().input_dim(), kHidden, kLocations,
                                 /*dropout_rate=*/0.0, rng);
}

inline core::DeployedModel tiny_deployment(std::uint64_t seed,
                                           double temperature = 1.0) {
  return {tiny_model(seed), tiny_spec(), core::PrivacyLayer(temperature),
          core::DeploymentSite::kInCloud};
}

inline mobility::Window random_window(Rng& rng) {
  mobility::Window window;
  for (auto& step : window.steps) {
    step.entry_bin =
        static_cast<std::uint8_t>(rng.below(mobility::kEntryBins));
    step.duration_bin =
        static_cast<std::uint8_t>(rng.below(mobility::kDurationBins));
    step.day_of_week =
        static_cast<std::uint8_t>(rng.below(mobility::kDaysPerWeek));
    step.location = static_cast<std::uint16_t>(rng.below(kLocations));
  }
  window.next_location = static_cast<std::uint16_t>(rng.below(kLocations));
  return window;
}

}  // namespace pelican::serve_testing
