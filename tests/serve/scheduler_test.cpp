#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "serve_support.hpp"

namespace pelican::serve {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<DeploymentRegistry>(4);
    for (std::uint32_t user = 0; user < 5; ++user) {
      registry_->deploy(user, tiny_deployment(user));
    }
  }

  /// Ground truth: direct single queries against the registry.
  std::vector<std::uint16_t> direct(const PredictRequest& request) {
    return registry_->with_model(
        request.user_id, [&](core::DeployedModel& model) {
          return model.predict_top_k(request.window, request.k);
        });
  }

  std::unique_ptr<DeploymentRegistry> registry_;
};

TEST_F(SchedulerTest, RejectsZeroMaxBatch) {
  EXPECT_THROW(BatchScheduler(*registry_, {.max_batch = 0}),
               std::invalid_argument);
}

TEST_F(SchedulerTest, SyncServeAnswersInRequestOrder) {
  Rng rng(42);
  std::vector<PredictRequest> requests;
  for (std::size_t i = 0; i < 40; ++i) {
    requests.push_back({static_cast<std::uint32_t>(rng.below(5)),
                        random_window(rng), 3});
  }

  BatchScheduler scheduler(*registry_, {.max_batch = 8});
  const auto responses = scheduler.serve(requests);

  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].user_id, requests[i].user_id);
    EXPECT_TRUE(responses[i].ok);
    EXPECT_EQ(responses[i].locations, direct(requests[i]))
        << "coalesced response " << i
        << " must equal the direct single query";
    EXPECT_GE(responses[i].latency_ms, 0.0);
  }

  const auto snap = scheduler.stats().snapshot();
  EXPECT_EQ(snap.requests_served, requests.size());
  EXPECT_GT(snap.mean_batch_size, 1.0)
      << "40 requests over 5 users must coalesce";
  EXPECT_GE(snap.p99_latency_ms, snap.p50_latency_ms);
}

TEST_F(SchedulerTest, UnknownUserYieldsNotOkInsteadOfThrowing) {
  Rng rng(7);
  const std::vector<PredictRequest> requests = {
      {0, random_window(rng), 3},
      {999, random_window(rng), 3},  // not deployed
      {1, random_window(rng), 3},
  };
  BatchScheduler scheduler(*registry_, {});
  const auto responses = scheduler.serve(requests);

  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_FALSE(responses[1].ok);
  EXPECT_TRUE(responses[1].locations.empty());
  EXPECT_TRUE(responses[2].ok);

  const auto snap = scheduler.stats().snapshot();
  EXPECT_EQ(snap.requests_served, 2u);
  EXPECT_EQ(snap.requests_rejected, 1u);
}

TEST_F(SchedulerTest, RejectedBatchAnswersNotOkAndEngineSurvives) {
  // A window outside the model's encoding domain makes the deployment throw
  // during the batched forward; the chunk must come back ok = false (not
  // crash the drainer or hang the futures), and the engine must keep
  // serving afterwards.
  Rng rng(13);
  mobility::Window poisoned = random_window(rng);
  poisoned.steps[0].location = 5000;  // >> tiny_spec().num_locations

  BatchScheduler scheduler(*registry_, {});
  const std::vector<PredictRequest> bad = {{0, poisoned, 3}};
  const auto rejected = scheduler.serve(bad);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_FALSE(rejected[0].ok);

  auto future = scheduler.submit({0, random_window(rng), 3});
  EXPECT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "the drain thread must survive a rejected batch";
  EXPECT_TRUE(future.get().ok);
  EXPECT_EQ(scheduler.stats().snapshot().requests_rejected, 1u);
}

TEST_F(SchedulerTest, RespectsPerRequestK) {
  Rng rng(11);
  const std::vector<PredictRequest> requests = {
      {0, random_window(rng), 1},
      {0, random_window(rng), 5},
  };
  BatchScheduler scheduler(*registry_, {});
  const auto responses = scheduler.serve(requests);
  EXPECT_EQ(responses[0].locations.size(), 1u);
  EXPECT_EQ(responses[1].locations.size(), 5u);
}

TEST_F(SchedulerTest, AsyncSubmitResolvesAllFutures) {
  Rng rng(99);
  std::vector<PredictRequest> requests;
  for (std::size_t i = 0; i < 30; ++i) {
    requests.push_back({static_cast<std::uint32_t>(rng.below(5)),
                        random_window(rng), 3});
  }

  BatchScheduler scheduler(
      *registry_,
      {.max_batch = 8, .max_delay = std::chrono::microseconds(500)});
  std::vector<std::future<PredictResponse>> futures;
  futures.reserve(requests.size());
  for (const auto& request : requests) {
    futures.push_back(scheduler.submit(request));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const PredictResponse response = futures[i].get();
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.locations, direct(requests[i]));
  }
}

TEST_F(SchedulerTest, MaxDelayDrainsPartialBatches) {
  // Far fewer requests than max_batch: only the delay policy can drain.
  Rng rng(5);
  BatchScheduler scheduler(
      *registry_,
      {.max_batch = 64, .max_delay = std::chrono::microseconds(200)});
  auto future = scheduler.submit({2, random_window(rng), 3});
  EXPECT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "a lone request must not wait for a full batch";
  EXPECT_TRUE(future.get().ok);
}

TEST_F(SchedulerTest, ConcurrentSubmittersAllGetAnswers) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 50;
  BatchScheduler scheduler(
      *registry_,
      {.max_batch = 16, .max_delay = std::chrono::microseconds(500)});

  std::vector<std::thread> threads;
  std::vector<std::size_t> answered(kThreads, 0);
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      std::vector<std::future<PredictResponse>> futures;
      futures.reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        futures.push_back(scheduler.submit(
            {static_cast<std::uint32_t>(rng.below(5)), random_window(rng),
             3}));
      }
      for (auto& future : futures) {
        if (future.get().ok) ++answered[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::size_t total = 0;
  for (const std::size_t a : answered) total += a;
  EXPECT_EQ(total, kThreads * kPerThread);
  EXPECT_EQ(scheduler.stats().snapshot().requests_served,
            kThreads * kPerThread);
}

TEST_F(SchedulerTest, DestructorAnswersQueuedRequests) {
  Rng rng(3);
  std::future<PredictResponse> future;
  {
    BatchScheduler scheduler(
        *registry_,
        {.max_batch = 64, .max_delay = std::chrono::seconds(10)});
    future = scheduler.submit({0, random_window(rng), 3});
    // Scheduler destroyed while the request is (very likely) still queued —
    // shutdown must flush, not abandon, the queue.
  }
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(future.get().ok);
}

TEST_F(SchedulerTest, StatsHistogramAccountsEveryBatch) {
  Rng rng(21);
  std::vector<PredictRequest> requests;
  for (std::size_t i = 0; i < 23; ++i) {
    requests.push_back({0, random_window(rng), 3});
  }
  BatchScheduler scheduler(*registry_, {.max_batch = 8});
  (void)scheduler.serve(requests);

  const auto snap = scheduler.stats().snapshot();
  std::size_t histogram_total = 0;
  for (const std::size_t count : snap.batch_size_log2_histogram) {
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, snap.batches_run);
  EXPECT_EQ(snap.batches_run, 3u) << "23 same-user requests at max_batch 8";
  EXPECT_EQ(snap.max_batch_size, 8u);
}

}  // namespace
}  // namespace pelican::serve
