// Deadline shedding at the BatchScheduler drain: a request whose
// deadline_ms budget expired between enqueue and pickup is answered
// rejected instead of forwarded, requests with slack (or no deadline) are
// served normally, and the shed is visible in requests_deadline_shed_total.
//
// Expiry is made deterministic with the same trick the admission tests use:
// max_delay parks the drainer long enough that a tiny budget is provably
// gone by pickup, while a generous budget provably is not.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "serve_support.hpp"

namespace pelican::serve {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<DeploymentRegistry>(4);
    for (std::uint32_t user = 0; user < 4; ++user) {
      registry_->deploy(user, tiny_deployment(user));
    }
  }

  std::unique_ptr<DeploymentRegistry> registry_;
};

TEST_F(DeadlineTest, ExpiredBudgetIsShedAtPickup) {
  // The drainer waits out max_delay (100 ms) before draining a non-full
  // batch, so a 1 ms budget is long expired at pickup while the 10 s one
  // is not.
  BatchScheduler scheduler(
      *registry_,
      {.max_batch = 1000, .max_delay = std::chrono::milliseconds(100)});
  Rng rng(7);
  PredictRequest doomed{0, random_window(rng), 3};
  doomed.deadline_ms = 1.0;
  PredictRequest relaxed{1, random_window(rng), 3};
  relaxed.deadline_ms = 10000.0;
  PredictRequest undeadlined{2, random_window(rng), 3};

  auto doomed_future = scheduler.submit(doomed);
  auto relaxed_future = scheduler.submit(relaxed);
  auto undeadlined_future = scheduler.submit(undeadlined);

  const PredictResponse shed = doomed_future.get();
  EXPECT_FALSE(shed.ok);
  EXPECT_TRUE(shed.rejected);
  EXPECT_TRUE(shed.locations.empty());

  const PredictResponse served = relaxed_future.get();
  EXPECT_TRUE(served.ok);
  EXPECT_FALSE(served.locations.empty());
  const PredictResponse served_no_deadline = undeadlined_future.get();
  EXPECT_TRUE(served_no_deadline.ok);

  EXPECT_EQ(scheduler.metrics()
                .counter("requests_deadline_shed_total")
                .value(),
            1u);
  EXPECT_EQ(scheduler.stats().snapshot().requests_shed, 1u);
}

TEST_F(DeadlineTest, SheddingNeverChangesSurvivorsBits) {
  // A mixed batch where half the requests expire must serve the survivors
  // with the same bits as an unfaulted run: batching is grouped AFTER the
  // shed, and grouping never changes results.
  Rng rng(11);
  std::vector<PredictRequest> requests;
  requests.reserve(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    PredictRequest request{i % 4, random_window(rng), 3};
    requests.push_back(request);
  }

  BatchScheduler baseline(*registry_, {.max_batch = 8});
  const auto expected = baseline.serve(requests);

  // Same windows, but odd requests carry an already-expired budget. serve()
  // measures the budget from entry, so a negative-slack budget cannot be
  // faked without sleeping; instead give odd requests a microscopic budget
  // and even ones none, then compare the even (served) rows bit for bit.
  std::vector<PredictRequest> mixed = requests;
  for (std::size_t i = 1; i < mixed.size(); i += 2) {
    mixed[i].deadline_ms = 1e-9;
  }
  BatchScheduler scheduler(*registry_, {.max_batch = 8});
  const auto responses = scheduler.serve(mixed);
  ASSERT_EQ(responses.size(), expected.size());
  for (std::size_t i = 0; i < responses.size(); i += 2) {
    ASSERT_TRUE(responses[i].ok) << "even request " << i << " must serve";
    EXPECT_EQ(responses[i].locations, expected[i].locations)
        << "deadline shedding must not perturb surviving answers";
  }
}

TEST_F(DeadlineTest, ZeroDeadlineMeansNoDeadline) {
  BatchScheduler scheduler(*registry_, {.max_batch = 4});
  Rng rng(13);
  std::vector<PredictRequest> requests;
  for (std::uint32_t i = 0; i < 4; ++i) {
    requests.push_back({i, random_window(rng), 3});  // deadline_ms = 0
  }
  const auto responses = scheduler.serve(requests);
  for (const auto& response : responses) {
    EXPECT_TRUE(response.ok);
    EXPECT_FALSE(response.rejected);
  }
  EXPECT_EQ(scheduler.metrics()
                .counter("requests_deadline_shed_total")
                .value(),
            0u);
}

}  // namespace
}  // namespace pelican::serve
