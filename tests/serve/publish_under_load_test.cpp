// Model updates under load (Section V-A4 at serving scale): one thread
// repeatedly publishes new versions for a user while workers serve that
// user and a shard neighbor.
//
// Two properties are proven:
//
//  1. No torn reads — every response for the updated user equals exactly
//     the old or the new model's output for that window; a forward never
//     observes a half-swapped model.
//  2. Stall-free publish — the expensive step of a publish (reading the
//     model out of the store) happens off every serving lock. The test
//     injects a store backend whose get() takes ~kStoreDelay, pins the
//     NEIGHBOR on the same registry shard, and asserts the neighbor's
//     single-query latency never approaches kStoreDelay. Under the old
//     design (model construction under the shard lock) every neighbor
//     query during a publish would stall for the full store delay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "serve/registry.hpp"
#include "serve_support.hpp"
#include "store/model_store.hpp"

namespace pelican::serve {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_model;
using pelican::serve_testing::tiny_spec;

constexpr auto kStoreDelay = std::chrono::milliseconds(250);

/// A memory backend whose reads take kStoreDelay — stands in for
/// deserializing a big checkpoint, and makes any lock held across the
/// store get show up as a quarter-second serving stall.
class SlowBackend final : public store::StoreBackend {
 public:
  void put(const store::ModelKey& key,
           nn::SequenceClassifier model) override {
    inner_.put(key, std::move(model));
  }
  [[nodiscard]] std::optional<nn::SequenceClassifier> get(
      const store::ModelKey& key) const override {
    std::this_thread::sleep_for(kStoreDelay);
    return inner_.get(key);
  }
  [[nodiscard]] bool contains(const store::ModelKey& key) const override {
    return inner_.contains(key);
  }
  bool erase(const store::ModelKey& key) override {
    return inner_.erase(key);
  }
  [[nodiscard]] std::vector<std::uint32_t> versions(
      const std::string& scope, std::uint32_t user_id) const override {
    return inner_.versions(scope, user_id);
  }

 private:
  store::MemoryBackend inner_;
};

core::DeployedModel reference_deployment(std::uint64_t seed,
                                         std::uint32_t version) {
  return {tiny_model(seed), tiny_spec(), core::PrivacyLayer(1.0),
          core::DeploymentSite::kInCloud, version};
}

TEST(PublishUnderLoadTest, NoTornReadsAndNeighborsUnaffected) {
  constexpr std::uint32_t kTarget = 0;
  constexpr std::uint32_t kNeighbor = 1;
  constexpr std::uint64_t kSeedV1 = 11;
  constexpr std::uint64_t kSeedV2 = 22;
  constexpr std::uint64_t kSeedNeighbor = 33;

  // One shard: the neighbor provably shares the target's shard, so a
  // publish that held the shard lock would stall it.
  DeploymentRegistry registry(/*shards=*/1);
  ASSERT_EQ(registry.shard_of(kTarget), registry.shard_of(kNeighbor));

  registry.deploy(kTarget, reference_deployment(kSeedV1, 1));
  registry.deploy(kNeighbor, reference_deployment(kSeedNeighbor, 0));

  auto model_store =
      std::make_shared<store::ModelStore>(std::make_unique<SlowBackend>());
  model_store->put({"personal", kTarget, 1}, tiny_model(kSeedV1));
  model_store->put({"personal", kTarget, 2}, tiny_model(kSeedV2));
  registry.attach_store(model_store, "personal");

  // Ground truth per window, computed on standalone deployments.
  Rng rng(7);
  std::vector<mobility::Window> windows;
  std::vector<std::vector<std::uint16_t>> expect_v1, expect_v2, expect_nb;
  {
    auto v1 = reference_deployment(kSeedV1, 1);
    auto v2 = reference_deployment(kSeedV2, 2);
    auto nb = reference_deployment(kSeedNeighbor, 0);
    for (std::size_t i = 0; i < 8; ++i) {
      windows.push_back(random_window(rng));
      expect_v1.push_back(v1.predict_top_k(windows.back(), 3));
      expect_v2.push_back(v2.predict_top_k(windows.back(), 3));
      expect_nb.push_back(nb.predict_top_k(windows.back(), 3));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  std::atomic<std::size_t> target_queries{0};

  // Two workers hammer the updated user: every answer must match v1 or v2
  // exactly for its window.
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      std::size_t i = w;  // interleave windows between the two workers
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t idx = i++ % windows.size();
        const auto top =
            registry.with_model(kTarget, [&](core::DeployedModel& model) {
              return model.predict_top_k(windows[idx], 3);
            });
        if (top != expect_v1[idx] && top != expect_v2[idx]) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        target_queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The neighbor worker also checks correctness and records its slowest
  // single query while publishes are in flight.
  std::atomic<std::size_t> neighbor_wrong{0};
  double neighbor_max_ms = 0.0;
  std::thread neighbor([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t idx = i++ % windows.size();
      const Stopwatch watch;
      const auto top =
          registry.with_model(kNeighbor, [&](core::DeployedModel& model) {
            return model.predict_top_k(windows[idx], 3);
          });
      neighbor_max_ms = std::max(neighbor_max_ms, watch.milliseconds());
      if (top != expect_nb[idx]) {
        neighbor_wrong.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Publisher: five store-backed updates, each paying kStoreDelay in the
  // store read, alternating between the two versions and ending on v2.
  for (std::uint32_t round = 0; round < 5; ++round) {
    registry.publish(kTarget, round % 2 == 0 ? 2u : 1u);
  }
  stop.store(true);
  for (auto& worker : workers) worker.join();
  neighbor.join();

  EXPECT_EQ(torn.load(), 0u)
      << "every response must match one consistent model version";
  EXPECT_EQ(neighbor_wrong.load(), 0u);
  EXPECT_GT(target_queries.load(), 0u)
      << "the updated user must keep being served during publishes";

  // The publisher spent >= 5 * kStoreDelay inside store reads while the
  // neighbor kept serving; had any serving lock been held across them, a
  // neighbor query would have taken ~kStoreDelay.
  const double delay_ms =
      std::chrono::duration<double, std::milli>(kStoreDelay).count();
  EXPECT_LT(neighbor_max_ms, delay_ms / 2.0)
      << "a publish must never stall shard neighbors";

  // Final state: the target serves v2, through the same (stable) handle,
  // with the cumulative query count carried across versions.
  const auto handle = registry.handle(kTarget);
  EXPECT_EQ(handle.snapshot()->model_version(), 2u);
  EXPECT_GE(handle.snapshot()->query_count(), 1u)
      << "publish carries the cumulative per-user query budget over";
  const auto final_top =
      registry.with_model(kTarget, [&](core::DeployedModel& model) {
        return model.predict_top_k(windows[0], 3);
      });
  EXPECT_EQ(final_top, expect_v2[0]);
}

}  // namespace
}  // namespace pelican::serve
