// Admission control of the BatchScheduler submit queue: all three
// QueuePolicy modes against a deliberately full queue.
//
// The queue is made observably full without timing games by exploiting the
// drain loop's straggler wait: with max_batch and max_delay both huge, the
// drainer parks on its delay deadline while the queue keeps admitting — so
// a test can fill the queue to max_queue deterministically, trigger the
// policy, and then let scheduler destruction flush the survivors (shutdown
// answers everything still queued).
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "serve_support.hpp"

namespace pelican::serve {
namespace {

using pelican::serve_testing::random_window;
using pelican::serve_testing::tiny_deployment;

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<DeploymentRegistry>(4);
    for (std::uint32_t user = 0; user < 5; ++user) {
      registry_->deploy(user, tiny_deployment(user));
    }
  }

  /// A config whose drainer will not drain on its own for `max_queue` + a
  /// few requests: the policy decision is the only observable behavior.
  static SchedulerConfig parked_config(std::size_t max_queue,
                                       QueuePolicy policy) {
    return {.max_batch = 1000,
            .max_delay = std::chrono::seconds(30),
            .max_queue = max_queue,
            .policy = policy};
  }

  std::unique_ptr<DeploymentRegistry> registry_;
};

TEST_F(AdmissionTest, RejectsZeroMaxQueue) {
  EXPECT_THROW(BatchScheduler(*registry_, {.max_queue = 0}),
               std::invalid_argument);
}

TEST_F(AdmissionTest, RejectPolicyAnswersNewRequestImmediately) {
  Rng rng(3);
  std::vector<std::future<PredictResponse>> futures;
  {
    BatchScheduler scheduler(*registry_,
                             parked_config(2, QueuePolicy::kReject));
    for (std::size_t i = 0; i < 5; ++i) {
      futures.push_back(scheduler.submit({0, random_window(rng), 3}));
    }
    // Requests 2..4 found the queue full: answered rejected right away,
    // without waiting for any drain.
    for (std::size_t i = 2; i < 5; ++i) {
      ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(5)),
                std::future_status::ready)
          << "rejection must not wait for the drainer";
      const auto response = futures[i].get();
      EXPECT_FALSE(response.ok);
      EXPECT_TRUE(response.rejected);
      EXPECT_TRUE(response.locations.empty());
    }
    const auto snap = scheduler.stats().snapshot();
    EXPECT_EQ(snap.requests_shed, 3u);
    EXPECT_EQ(snap.peak_queue_depth, 2u);
  }
  // Shutdown flushed the two admitted requests; they were served.
  for (std::size_t i = 0; i < 2; ++i) {
    const auto response = futures[i].get();
    EXPECT_TRUE(response.ok);
    EXPECT_FALSE(response.rejected);
  }
}

TEST_F(AdmissionTest, ShedOldestPolicyDropsFromTheFront) {
  Rng rng(4);
  std::vector<std::future<PredictResponse>> futures;
  {
    BatchScheduler scheduler(*registry_,
                             parked_config(2, QueuePolicy::kShedOldest));
    for (std::size_t i = 0; i < 4; ++i) {
      futures.push_back(scheduler.submit({1, random_window(rng), 3}));
    }
    // Submit 2 shed request 0; submit 3 shed request 1.
    for (std::size_t i = 0; i < 2; ++i) {
      ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(5)),
                std::future_status::ready)
          << "the shed victim's future must resolve immediately";
      const auto response = futures[i].get();
      EXPECT_FALSE(response.ok);
      EXPECT_TRUE(response.rejected);
    }
    EXPECT_EQ(scheduler.stats().snapshot().requests_shed, 2u);
  }
  // The two NEWEST requests kept their seats and were served on shutdown.
  for (std::size_t i = 2; i < 4; ++i) {
    const auto response = futures[i].get();
    EXPECT_TRUE(response.ok);
    EXPECT_FALSE(response.rejected);
  }
}

TEST_F(AdmissionTest, BlockPolicyAppliesBackpressureWithoutDropping) {
  // Tiny queue, fast drains: submitters must block at the bound rather
  // than drop, and every request must eventually be answered ok.
  Rng rng(5);
  BatchScheduler scheduler(*registry_,
                           {.max_batch = 4,
                            .max_delay = std::chrono::microseconds(200),
                            .max_queue = 4,
                            .policy = QueuePolicy::kBlock});
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kPerThread = 40;
  std::vector<std::thread> submitters;
  std::vector<std::size_t> answered(kThreads, 0);
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng thread_rng(100 + t);
      std::vector<std::future<PredictResponse>> futures;
      futures.reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        futures.push_back(scheduler.submit(
            {static_cast<std::uint32_t>(thread_rng.below(5)),
             random_window(thread_rng), 3}));
      }
      for (auto& future : futures) {
        if (future.get().ok) ++answered[t];
      }
    });
  }
  for (auto& thread : submitters) thread.join();

  std::size_t total = 0;
  for (const std::size_t a : answered) total += a;
  EXPECT_EQ(total, kThreads * kPerThread) << "block mode never sheds";

  const auto snap = scheduler.stats().snapshot();
  EXPECT_EQ(snap.requests_shed, 0u);
  EXPECT_LE(snap.peak_queue_depth, 4u + kThreads)
      << "the queue bound must actually bound the queue (one straggler per "
         "parked submitter can land after a drain empties it)";
}

TEST_F(AdmissionTest, ShedResponseIsDistinguishableFromUnknownUser) {
  Rng rng(6);
  BatchScheduler scheduler(*registry_, {});
  auto unknown = scheduler.submit({999, random_window(rng), 3});
  const auto response = unknown.get();
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.rejected)
      << "an unknown user was admitted but unservable; rejected is reserved "
         "for admission control";
}

}  // namespace
}  // namespace pelican::serve
