// Fixture: a directory under src/ that is not a registered layer. The
// layering lint's completeness check must flag src/telemetry even though
// its includes are clean — new layers must be added to the lattice (and the
// CMake link structure) deliberately. Never compiled; used only by
// tests/lint/lint_selftest.sh.
#pragma once

#include "common/annotations.hpp"

inline int fixture_rogue_layer() { return 1; }
