// Fixture: nn (a base-layer sibling) reaching UP into serve. The layering
// lint must flag this include — serve sits five layers above nn in the
// lattice. This file is never compiled; it exists only for
// tests/lint/lint_selftest.sh.
#pragma once

#include "serve/stats.hpp"

inline int fixture_bad_upward_include() { return 1; }
