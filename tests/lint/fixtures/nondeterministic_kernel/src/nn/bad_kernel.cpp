// Fixture: an nn kernel violating the ascending-k accumulation contract in
// all four ways the determinism lint detects. Never compiled; used only by
// tests/lint/lint_selftest.sh.
#include <numeric>
#include <vector>

namespace fixture {

double unordered_sum(const std::vector<double>& xs) {
  // Violation 1: std::reduce accumulates in unspecified order.
  return std::reduce(xs.begin(), xs.end(), 0.0);
}

double omp_sum(const std::vector<double>& xs) {
  double sum = 0.0;
  // Violation 2: OpenMP reduction reassociates the chain.
#pragma omp parallel for reduction(+ : sum)
  for (std::size_t k = 0; k < xs.size(); ++k) sum += xs[k];
  return sum;
}

double descending_dot(const std::vector<double>& a,
                      const std::vector<double>& b) {
  double acc = 0.0;
  // Violation 3: descending-k loop reverses the accumulation chain.
  for (std::size_t k = a.size(); k-- > 0;) acc += a[k] * b[k];
  return acc;
}

double policy_sum(const std::vector<double>& xs) {
  // Violation 4: an execution policy makes the accumulation reorderable.
  return std::reduce(std::execution::par_unseq, xs.begin(), xs.end(), 0.0);
}

}  // namespace fixture
