// Fixture: a miniature wire.hpp whose frame struct will be edited WITHOUT
// bumping its version constant (see lint_selftest.sh). The committed lock
// below was generated from this file BEFORE the `retries` field was added,
// so the wire lint must fail: surface changed, version still 1.
#pragma once

#include <cstdint>

namespace fixture::router {

enum class Verb : std::uint8_t {
  kPing = 1,
  kPong = 2,
};

/// Layout version of the kPing frame.
inline constexpr std::uint8_t kPingFrameVersion = 1;

struct PingCommand {
  std::uint32_t sequence = 0;
  std::uint32_t retries = 0;  // added without bumping kPingFrameVersion
};

}  // namespace fixture::router
