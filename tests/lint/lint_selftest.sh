#!/usr/bin/env bash
# Self-test for the tools/lint family: each lint must PASS on the real tree
# and FAIL on the fixture tree seeded with the violation it exists to catch.
# A lint that stops firing on its fixture has rotted (pattern drift, path
# change) and would silently wave real violations through — this test is the
# canary. Run from the repo root (ctest sets WORKING_DIRECTORY).
set -u

failures=0

expect() {  # expect <pass|fail> <description> <command...>
  local want="$1" what="$2"
  shift 2
  if output=$("$@" 2>&1); then got=pass; else got=fail; fi
  if [[ "$got" != "$want" ]]; then
    echo "lint_selftest: expected $want, got $got: $what"
    echo "$output" | sed 's/^/    /'
    failures=$((failures + 1))
  else
    echo "ok ($want): $what"
  fi
}

F=tests/lint/fixtures

# The real tree is clean under every lint.
expect pass "layering lint on the real tree" \
  tools/lint/check_layering.sh
expect pass "determinism lint on the real tree" \
  tools/lint/check_determinism.sh
expect pass "wire-format lint on the real tree" \
  tools/lint/check_wire_version.sh

# Each fixture trips exactly the lint it was built for.
expect fail "layering lint flags an upward include (nn -> serve)" \
  tools/lint/check_layering.sh --root "$F/layering_violation"
expect fail "layering lint flags an unregistered src/ directory" \
  tools/lint/check_layering.sh --root "$F/unregistered_layer"
expect fail "determinism lint flags unordered-accumulation kernels" \
  tools/lint/check_determinism.sh --root "$F/nondeterministic_kernel"
expect fail "wire lint flags a frame change without a version bump" \
  tools/lint/check_wire_version.sh --root "$F/wire_unbumped"

# The determinism fixture must trip every pattern class, not just one —
# each `report` label names a distinct construct.
det_output=$(tools/lint/check_determinism.sh --root "$F/nondeterministic_kernel" 2>&1)
for label in "OpenMP" "std::reduce" "std::execution" "descending-k"; do
  if ! grep -q "$label" <<<"$det_output"; then
    echo "lint_selftest: determinism lint no longer detects: $label"
    failures=$((failures + 1))
  fi
done

if [[ $failures -eq 0 ]]; then
  echo "lint_selftest OK: all lints pass the real tree and fail their fixtures"
  exit 0
fi
echo "lint_selftest: $failures check(s) failed"
exit 1
