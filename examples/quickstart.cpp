// Quickstart: the smallest end-to-end tour of the Pelican API.
//
//  1. Generate a synthetic campus and mobility traces.
//  2. Train the general (multi-user) next-location model in the "cloud".
//  3. Personalize it for one user on their "device" via transfer learning.
//  4. Enable the privacy layer and serve top-3 next-location predictions.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/pelican.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "models/window_dataset.hpp"

using namespace pelican;

int main() {
  // --- 1. A small campus and a few users' traces ---------------------
  mobility::CampusConfig campus_config;
  campus_config.buildings = 20;
  campus_config.mean_aps_per_building = 5;
  const auto campus = mobility::Campus::generate(campus_config, /*seed=*/7);
  const auto spec = mobility::EncodingSpec::for_campus(
      campus, mobility::SpatialLevel::kBuilding);

  Rng rng(7);
  const mobility::SimulationConfig sim{.weeks = 6};
  std::vector<mobility::Window> contributor_windows;
  for (std::uint32_t u = 0; u < 6; ++u) {
    Rng persona_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        campus, u, mobility::PersonaConfig{}, persona_rng);
    const auto trajectory =
        mobility::simulate(campus, persona, sim, rng.fork(100 + u));
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
    contributor_windows.insert(contributor_windows.end(), windows.begin(),
                               windows.end());
  }
  std::cout << "simulated " << contributor_windows.size()
            << " contributor windows on a " << campus.num_buildings()
            << "-building campus\n";

  // --- 2. Cloud-based initial training (Fig. 4, step 1) --------------
  core::CloudServer cloud;
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = 32;
  general_config.train.epochs = 6;
  general_config.train.lr = 2e-3;
  const models::WindowDataset contributors(contributor_windows, spec);
  const auto version = cloud.train_general(contributors, general_config);
  std::cout << "cloud trained general model v" << version << " in "
            << cloud.training_cost(version).wall_seconds << " s\n";

  // --- 3. Device-based personalization (Fig. 4, step 2) --------------
  Rng user_rng = rng.fork(99);
  const auto persona = mobility::generate_persona(
      campus, 42, mobility::PersonaConfig{}, user_rng);
  const auto trajectory =
      mobility::simulate(campus, persona, sim, rng.fork(999));
  auto split = mobility::split_windows(
      mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding),
      0.8);

  core::Device device(42, split.train, spec);
  models::PersonalizationConfig personal_config;
  personal_config.method = models::PersonalizationMethod::kFeatureExtraction;
  personal_config.train.epochs = 8;
  personal_config.train.lr = 2e-3;
  const auto cost = device.personalize(cloud, personal_config);
  std::cout << "device personalized (TL feature extraction) in "
            << cost.wall_seconds << " s\n";

  // --- 4. Deploy with the privacy layer and predict ------------------
  device.set_privacy_temperature(core::PrivacyLayer::kStrongTemperature);
  core::DeployedModel service = device.deploy_local();

  std::size_t hits = 0;
  for (const auto& window : split.test) {
    const auto top3 = service.predict_top_k(window, 3);
    for (const auto loc : top3) {
      if (loc == window.next_location) {
        ++hits;
        break;
      }
    }
  }
  std::cout << "top-3 accuracy on held-out weeks: "
            << (100.0 * static_cast<double>(hits) /
                static_cast<double>(split.test.size()))
            << "% over " << split.test.size() << " predictions\n";
  std::cout << "served " << service.query_count()
            << " queries behind privacy temperature "
            << service.temperature() << "\n";
  return 0;
}
