// Serving cluster: thousands of users querying personalized deployments
// concurrently through the pelican_serve engine — including a live model
// update published mid-traffic.
//
//  1. Train one small general model in the "cloud" (weights are shared —
//     per-user fine-tuning does not change serving cost, so for a serving
//     demo every user deploys a clone with their own privacy temperature).
//  2. Register ~1000 per-user deployments in a sharded DeploymentRegistry,
//     adopting any models the CloudServer already hosts.
//  3. Run concurrent client threads submitting prediction requests to the
//     BatchScheduler, which coalesces same-user requests into batched LSTM
//     forwards drained across the thread pool.
//  4. While a second traffic wave is in flight, retrain and live-publish a
//     v2 model for 10% of users through the shared store::ModelStore —
//     DeploymentRegistry::publish installs each without stalling serving —
//     and print served-version counts before/after.
//  5. Print the ServerStats surface: throughput, batch-size histogram,
//     p50/p99 latency, and admission-control counters.
//  6. Go multi-process: spawn a 3-process pelican_engined fleet over Unix
//     sockets (router::LocalFleet), publish per-user models into the
//     fleet-shared filesystem store, route traffic through the Router
//     front door, live-publish v2 for one user through it, and print the
//     merged fleet stats. (Skipped with a note if the pelican_engined
//     binary is not built.)
//
// Build & run:  ./build/examples/serving_cluster
#include <unistd.h>

#include <filesystem>
#include <future>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/pelican.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "models/window_dataset.hpp"
#include "router/local_fleet.hpp"
#include "router/router.hpp"
#include "serve/scheduler.hpp"

using namespace pelican;

namespace {

/// One wave of concurrent client traffic; returns responses-served counts
/// keyed by the model version that answered.
std::map<std::uint32_t, std::size_t> run_wave(
    serve::BatchScheduler& scheduler,
    const std::vector<mobility::Window>& query_windows,
    std::size_t num_users, std::size_t clients,
    std::size_t requests_per_client, std::uint64_t seed_base) {
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  std::vector<std::map<std::uint32_t, std::size_t>> per_client(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      Rng client_rng(seed_base + c);
      std::vector<std::future<serve::PredictResponse>> futures;
      futures.reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        serve::PredictRequest request;
        request.user_id =
            static_cast<std::uint32_t>(client_rng.below(num_users));
        request.window =
            query_windows[client_rng.below(query_windows.size())];
        request.k = 3;
        futures.push_back(scheduler.submit(request));
      }
      for (auto& future : futures) {
        const auto response = future.get();
        if (response.ok) ++per_client[c][response.model_version];
      }
    });
  }
  for (auto& thread : client_threads) thread.join();

  std::map<std::uint32_t, std::size_t> by_version;
  for (const auto& counts : per_client) {
    for (const auto& [version, count] : counts) by_version[version] += count;
  }
  return by_version;
}

void print_versions(const char* label,
                    const std::map<std::uint32_t, std::size_t>& by_version) {
  std::cout << label;
  for (const auto& [version, count] : by_version) {
    std::cout << "  v" << version << ": " << count;
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  // --- 1. A tiny campus and one cloud-trained general model ----------
  mobility::CampusConfig campus_config;
  campus_config.buildings = 16;
  campus_config.mean_aps_per_building = 4;
  const auto campus = mobility::Campus::generate(campus_config, /*seed=*/17);
  const auto spec = mobility::EncodingSpec::for_campus(
      campus, mobility::SpatialLevel::kBuilding);

  Rng rng(17);
  const mobility::SimulationConfig sim{.weeks = 4};
  std::vector<mobility::Window> contributor_windows;
  std::vector<mobility::Window> query_windows;
  for (std::uint32_t u = 0; u < 4; ++u) {
    Rng persona_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        campus, u, mobility::PersonaConfig{}, persona_rng);
    const auto trajectory =
        mobility::simulate(campus, persona, sim, rng.fork(100 + u));
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
    contributor_windows.insert(contributor_windows.end(), windows.begin(),
                               windows.end());
    query_windows.insert(query_windows.end(), windows.begin(), windows.end());
  }

  core::CloudServer cloud;
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = 16;
  general_config.train.epochs = 3;
  general_config.train.lr = 2e-3;
  const models::WindowDataset contributors(contributor_windows, spec);
  const auto version = cloud.train_general(contributors, general_config);
  std::cout << "cloud trained general model v" << version << " in "
            << Table::num(cloud.training_cost(version).wall_seconds, 2)
            << " s\n";

  // --- 2. A registry of per-user deployments -------------------------
  const std::size_t num_users = 1000;
  serve::DeploymentRegistry registry(/*shards=*/32);

  // A few users are already hosted in the cloud tier; the serving engine
  // subsumes that hosting.
  for (std::uint32_t user = 0; user < 8; ++user) {
    cloud.host_personalized(
        user, core::DeployedModel(cloud.download_general(version), spec,
                                  core::PrivacyLayer(1.0),
                                  core::DeploymentSite::kInCloud,
                                  /*model_version=*/version));
  }
  const std::size_t adopted = registry.adopt_hosted(cloud);

  for (std::uint32_t user = static_cast<std::uint32_t>(adopted);
       user < num_users; ++user) {
    // Every user picks their own (private) temperature; serving quality is
    // unaffected by construction, so the engine never needs to know it.
    const double temperature = (user % 2 == 0)
                                   ? 1.0
                                   : core::PrivacyLayer::kStrongTemperature;
    registry.deploy(user, core::DeployedModel(
                              cloud.download_general(version), spec,
                              core::PrivacyLayer(temperature),
                              core::DeploymentSite::kInCloud,
                              /*model_version=*/version));
  }
  std::cout << "registry: " << registry.size() << " deployments ("
            << adopted << " adopted from the cloud tier) across "
            << registry.shard_count() << " shards\n";

  // The registry pulls model updates from the cloud's store, where the
  // re-personalization pipeline publishes per-user versions.
  registry.attach_store(cloud.shared_model_store(), "personal");

  // --- 3. Wave 1: concurrent clients against the batch scheduler -----
  serve::BatchScheduler scheduler(
      registry, {.max_batch = 64,
                 .max_delay = std::chrono::microseconds(1000)});

  const std::size_t clients = 4;
  const std::size_t requests_per_client = 2000;
  std::cout << "serving " << 2 * clients * requests_per_client
            << " requests from " << clients
            << " client threads in two waves...\n";

  const Stopwatch watch;
  const auto wave1 =
      run_wave(scheduler, query_windows, num_users, clients,
               requests_per_client, /*seed_base=*/9000);

  // --- 4. Wave 2 with a live model update mid-traffic ----------------
  // "Retrain" in the cloud (a v2 general model on the same contributors),
  // stage a per-user copy in the store for 10% of users, and publish each
  // while wave 2 traffic is being served. publish() builds the replacement
  // off-lock and installs it with a pointer swap, so neither the updated
  // user nor shard neighbors stall.
  const auto v2 = cloud.train_general(contributors, general_config);
  std::thread updater([&] {
    for (std::uint32_t user = 0; user < num_users; user += 10) {
      cloud.model_store().put({"personal", user, v2},
                              cloud.download_general(v2));
      registry.publish(user, v2);
    }
  });
  const auto wave2 =
      run_wave(scheduler, query_windows, num_users, clients,
               requests_per_client, /*seed_base=*/9500);
  updater.join();
  const double seconds = watch.seconds();

  print_versions("served versions, wave 1 (pre-update): ", wave1);
  print_versions("served versions, wave 2 (live update): ", wave2);

  std::size_t total_answered = 0;
  for (const auto& [v, count] : wave1) total_answered += count;
  for (const auto& [v, count] : wave2) total_answered += count;

  // --- 5. The measurement surface -------------------------------------
  const auto snap = scheduler.stats().snapshot();
  print_banner(std::cout, "serving cluster stats");
  Table table({"metric", "value"});
  table.add_row({"requests served", std::to_string(snap.requests_served)});
  table.add_row({"requests answered ok", std::to_string(total_answered)});
  table.add_row({"requests/sec",
                 Table::num(static_cast<double>(total_answered) / seconds, 0)});
  table.add_row({"batched forwards", std::to_string(snap.batches_run)});
  table.add_row({"mean batch size", Table::num(snap.mean_batch_size, 2)});
  table.add_row({"max batch size", std::to_string(snap.max_batch_size)});
  table.add_row({"peak queue depth", std::to_string(snap.peak_queue_depth)});
  table.add_row({"shed by admission", std::to_string(snap.requests_shed)});
  table.add_row({"p50 latency ms", Table::num(snap.p50_latency_ms, 3)});
  table.add_row({"p99 latency ms", Table::num(snap.p99_latency_ms, 3)});
  std::cout << table;

  std::string histogram;
  for (std::size_t b = 0; b < snap.batch_size_log2_histogram.size(); ++b) {
    if (b > 0) histogram += "  ";
    histogram += ">=" + std::to_string(std::size_t{1} << b) + ":" +
                 std::to_string(snap.batch_size_log2_histogram[b]);
  }
  std::cout << "batch-size histogram (log2 buckets): " << histogram << "\n";

  // --- 6. The same service as a 3-process fleet ------------------------
  // Everything above ran in ONE process. The router tier runs the engine
  // as N pelican_engined processes behind one front door: models flow
  // through a fleet-shared filesystem store, the Router partitions users
  // across processes by consistent hashing, and a publish is routed to the
  // owning process only.
  if (router::LocalFleet::default_engined_path().empty()) {
    std::cout << "\n(pelican_engined not built — skipping the multi-process "
                 "fleet demo; build the tools/ targets to see it)\n";
    return 0;
  }
  print_banner(std::cout, "multi-process fleet (3 x pelican_engined)");
  const std::filesystem::path fleet_root =
      std::filesystem::temp_directory_path() /
      ("pelican_cluster_" + std::to_string(::getpid()));
  {
    constexpr std::uint32_t kFleetUsers = 12;
    router::LocalFleetConfig fleet_config;
    fleet_config.root = fleet_root;
    fleet_config.processes = 3;
    router::LocalFleet fleet(fleet_config);

    // Publish per-user models into the fleet-shared store; engines pull
    // them by (scope, user, version) key at deploy time.
    {
      store::ModelStore fleet_store(
          std::make_unique<store::FilesystemBackend>(fleet.store_root()));
      for (std::uint32_t user = 0; user < kFleetUsers; ++user) {
        fleet_store.put({"personal", user, 1}, cloud.download_general(version));
        fleet_store.put({"personal", user, 2}, cloud.download_general(v2));
      }
    }

    router::Router front_door;
    for (const auto& address : fleet.addresses()) {
      (void)front_door.add_backend(address);
    }
    std::map<std::string, std::size_t> placement;
    for (std::uint32_t user = 0; user < kFleetUsers; ++user) {
      front_door.deploy(user, 1, spec, /*temperature=*/1.0);
      ++placement[front_door.owner_of(user)];
    }
    std::cout << "placement of " << kFleetUsers << " users:";
    for (const auto& [address, count] : placement) {
      std::cout << "  " << count << " on ..."
                << address.substr(address.size() > 12 ? address.size() - 12
                                                      : 0);
    }
    std::cout << "\n";

    // Routed traffic, with a live publish through the front door.
    Rng fleet_rng(77);
    std::vector<serve::PredictRequest> routed_requests;
    for (std::size_t i = 0; i < 600; ++i) {
      routed_requests.push_back(
          {static_cast<std::uint32_t>(fleet_rng.below(kFleetUsers)),
           query_windows[fleet_rng.below(query_windows.size())], 3});
    }
    auto first = front_door.serve(
        std::span<const serve::PredictRequest>(routed_requests).first(300));
    front_door.publish(0, 2);  // routed to user 0's owning process only
    auto second = front_door.serve(
        std::span<const serve::PredictRequest>(routed_requests).last(300));

    std::map<std::uint32_t, std::size_t> fleet_versions;
    for (const auto& response : first) {
      if (response.ok) ++fleet_versions[response.model_version];
    }
    for (const auto& response : second) {
      if (response.ok) ++fleet_versions[response.model_version];
    }
    std::cout << "served versions through the router:";
    for (const auto& [served_version, count] : fleet_versions) {
      std::cout << "  v" << served_version << ": " << count;
    }
    std::cout << "\n";

    const auto fleet_snap = front_door.fleet_stats();
    std::cout << "fleet stats (merged across 3 processes): "
              << fleet_snap.requests_served << " served, mean batch "
              << Table::num(fleet_snap.mean_batch_size, 2) << ", engine p99 "
              << Table::num(fleet_snap.p99_latency_ms, 3) << " ms\n";

    front_door.drain_fleet();
    for (std::size_t i = 0; i < fleet.size(); ++i) (void)fleet.reap(i);
    std::cout << "fleet drained\n";
  }
  std::error_code fleet_ec;
  std::filesystem::remove_all(fleet_root, fleet_ec);
  return 0;
}
