// Serving cluster: thousands of users querying personalized deployments
// concurrently through the pelican_serve engine.
//
//  1. Train one small general model in the "cloud" (weights are shared —
//     per-user fine-tuning does not change serving cost, so for a serving
//     demo every user deploys a clone with their own privacy temperature).
//  2. Register ~1000 per-user deployments in a sharded DeploymentRegistry,
//     adopting any models the CloudServer already hosts.
//  3. Run concurrent client threads submitting prediction requests to the
//     BatchScheduler, which coalesces same-user requests into batched LSTM
//     forwards drained across the thread pool.
//  4. Print the ServerStats surface: throughput, batch-size histogram, and
//     p50/p99 latency.
//
// Build & run:  ./build/examples/serving_cluster
#include <iostream>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/pelican.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "models/window_dataset.hpp"
#include "serve/scheduler.hpp"

using namespace pelican;

int main() {
  // --- 1. A tiny campus and one cloud-trained general model ----------
  mobility::CampusConfig campus_config;
  campus_config.buildings = 16;
  campus_config.mean_aps_per_building = 4;
  const auto campus = mobility::Campus::generate(campus_config, /*seed=*/17);
  const auto spec = mobility::EncodingSpec::for_campus(
      campus, mobility::SpatialLevel::kBuilding);

  Rng rng(17);
  const mobility::SimulationConfig sim{.weeks = 4};
  std::vector<mobility::Window> contributor_windows;
  std::vector<mobility::Window> query_windows;
  for (std::uint32_t u = 0; u < 4; ++u) {
    Rng persona_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        campus, u, mobility::PersonaConfig{}, persona_rng);
    const auto trajectory =
        mobility::simulate(campus, persona, sim, rng.fork(100 + u));
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);
    contributor_windows.insert(contributor_windows.end(), windows.begin(),
                               windows.end());
    query_windows.insert(query_windows.end(), windows.begin(), windows.end());
  }

  core::CloudServer cloud;
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = 16;
  general_config.train.epochs = 3;
  general_config.train.lr = 2e-3;
  const models::WindowDataset contributors(contributor_windows, spec);
  const auto version = cloud.train_general(contributors, general_config);
  std::cout << "cloud trained general model v" << version << " in "
            << Table::num(cloud.training_cost(version).wall_seconds, 2)
            << " s\n";

  // --- 2. A registry of per-user deployments -------------------------
  const std::size_t num_users = 1000;
  serve::DeploymentRegistry registry(/*shards=*/32);

  // A few users are already hosted in the cloud tier; the serving engine
  // subsumes that hosting.
  for (std::uint32_t user = 0; user < 8; ++user) {
    cloud.host_personalized(
        user, core::DeployedModel(cloud.download_general(version), spec,
                                  core::PrivacyLayer(1.0),
                                  core::DeploymentSite::kInCloud));
  }
  const std::size_t adopted = registry.adopt_hosted(cloud);

  for (std::uint32_t user = static_cast<std::uint32_t>(adopted);
       user < num_users; ++user) {
    // Every user picks their own (private) temperature; serving quality is
    // unaffected by construction, so the engine never needs to know it.
    const double temperature = (user % 2 == 0)
                                   ? 1.0
                                   : core::PrivacyLayer::kStrongTemperature;
    registry.deploy(user, core::DeployedModel(
                              cloud.download_general(version), spec,
                              core::PrivacyLayer(temperature),
                              core::DeploymentSite::kInCloud));
  }
  std::cout << "registry: " << registry.size() << " deployments ("
            << adopted << " adopted from the cloud tier) across "
            << registry.shard_count() << " shards\n";

  // --- 3. Concurrent clients against the batch scheduler -------------
  serve::BatchScheduler scheduler(
      registry, {.max_batch = 64,
                 .max_delay = std::chrono::microseconds(1000)});

  const std::size_t clients = 4;
  const std::size_t requests_per_client = 2000;
  std::cout << "serving " << clients * requests_per_client
            << " requests from " << clients << " client threads...\n";

  const Stopwatch watch;
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  std::vector<std::size_t> answered(clients, 0);
  for (std::size_t c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      Rng client_rng(9000 + c);
      std::vector<std::future<serve::PredictResponse>> futures;
      futures.reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        serve::PredictRequest request;
        request.user_id =
            static_cast<std::uint32_t>(client_rng.below(num_users));
        request.window =
            query_windows[client_rng.below(query_windows.size())];
        request.k = 3;
        futures.push_back(scheduler.submit(request));
      }
      for (auto& future : futures) {
        if (future.get().ok) ++answered[c];
      }
    });
  }
  for (auto& thread : client_threads) thread.join();
  const double seconds = watch.seconds();

  std::size_t total_answered = 0;
  for (const std::size_t a : answered) total_answered += a;

  // --- 4. The measurement surface -------------------------------------
  const auto snap = scheduler.stats().snapshot();
  print_banner(std::cout, "serving cluster stats");
  Table table({"metric", "value"});
  table.add_row({"requests served", std::to_string(snap.requests_served)});
  table.add_row({"requests answered ok", std::to_string(total_answered)});
  table.add_row({"requests/sec",
                 Table::num(static_cast<double>(total_answered) / seconds, 0)});
  table.add_row({"batched forwards", std::to_string(snap.batches_run)});
  table.add_row({"mean batch size", Table::num(snap.mean_batch_size, 2)});
  table.add_row({"max batch size", std::to_string(snap.max_batch_size)});
  table.add_row({"p50 latency ms", Table::num(snap.p50_latency_ms, 3)});
  table.add_row({"p99 latency ms", Table::num(snap.p99_latency_ms, 3)});
  std::cout << table;

  std::string histogram;
  for (std::size_t b = 0; b < snap.batch_size_log2_histogram.size(); ++b) {
    if (b > 0) histogram += "  ";
    histogram += ">=" + std::to_string(std::size_t{1} << b) + ":" +
                 std::to_string(snap.batch_size_log2_histogram[b]);
  }
  std::cout << "batch-size histogram (log2 buckets): " << histogram << "\n";
  return 0;
}
