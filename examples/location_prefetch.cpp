// Location-aware content prefetching — the class of mobile service the
// paper's introduction motivates (e.g. prefetch a predicted destination's
// content: store hours, directions, menus).
//
// The service asks the deployed personalized model for the top-3 likely
// next locations after each observed session pair and "prefetches" content
// for them. The demo shows the service-quality invariant of Section V-B:
// prefetch hit rates are IDENTICAL with the privacy layer on and off,
// because temperature scaling never reorders confidences.
//
// Build & run:  ./build/examples/location_prefetch
#include <iostream>

#include "common/table.hpp"
#include "core/pelican.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "models/window_dataset.hpp"

using namespace pelican;

namespace {

double prefetch_hit_rate(core::DeployedModel& service,
                         std::span<const mobility::Window> sessions,
                         std::size_t k) {
  std::size_t hits = 0;
  for (const auto& window : sessions) {
    const auto prefetched = service.predict_top_k(window, k);
    for (const auto loc : prefetched) {
      if (loc == window.next_location) {
        ++hits;
        break;
      }
    }
  }
  return 100.0 * static_cast<double>(hits) /
         static_cast<double>(sessions.size());
}

}  // namespace

int main() {
  mobility::CampusConfig campus_config;
  campus_config.buildings = 20;
  campus_config.mean_aps_per_building = 5;
  const auto campus = mobility::Campus::generate(campus_config, 23);
  const auto spec = mobility::EncodingSpec::for_campus(
      campus, mobility::SpatialLevel::kBuilding);

  Rng rng(23);
  const mobility::SimulationConfig sim{.weeks = 6};
  std::vector<mobility::Window> pooled;
  for (std::uint32_t u = 0; u < 6; ++u) {
    Rng persona_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        campus, u, mobility::PersonaConfig{}, persona_rng);
    const auto traj =
        mobility::simulate(campus, persona, sim, rng.fork(100 + u));
    const auto windows =
        mobility::make_windows(traj, mobility::SpatialLevel::kBuilding);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }

  core::CloudServer cloud;
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = 32;
  general_config.train.epochs = 6;
  general_config.train.lr = 2e-3;
  (void)cloud.train_general(models::WindowDataset(pooled, spec),
                            general_config);

  Rng user_rng = rng.fork(55);
  const auto persona = mobility::generate_persona(
      campus, 55, mobility::PersonaConfig{}, user_rng);
  const auto trajectory =
      mobility::simulate(campus, persona, sim, rng.fork(555));
  auto split = mobility::split_windows(
      mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding),
      0.8);

  core::Device device(55, split.train, spec);
  models::PersonalizationConfig personal_config;
  personal_config.method = models::PersonalizationMethod::kFeatureExtraction;
  personal_config.train.epochs = 8;
  personal_config.train.lr = 2e-3;
  device.personalize(cloud, personal_config);

  // Two deployments of the same model: privacy layer off vs on.
  device.set_privacy_temperature(1.0);
  core::DeployedModel plain = device.deploy_local();
  device.set_privacy_temperature(core::PrivacyLayer::kStrongTemperature);
  core::DeployedModel defended = device.deploy_local();

  Table table({"prefetch depth k", "hit rate, no defense %",
               "hit rate, privacy layer %"});
  double max_gap = 0.0;
  for (const std::size_t k : {1, 2, 3, 5}) {
    const double plain_rate = prefetch_hit_rate(plain, split.test, k);
    const double defended_rate = prefetch_hit_rate(defended, split.test, k);
    max_gap = std::max(max_gap, std::abs(plain_rate - defended_rate));
    table.add_row({std::to_string(k), Table::num(plain_rate, 1),
                   Table::num(defended_rate, 1)});
  }
  std::cout << "content prefetch simulation over " << split.test.size()
            << " sessions:\n"
            << table;
  // The top prediction is bit-identical under the privacy layer; deeper
  // prefetch slots can only differ where confidences saturate to exact-zero
  // ties (see PrivacyLayer::apply), so hit rates stay within noise.
  std::cout << "largest hit-rate gap across k: " << Table::num(max_gap, 2)
            << " points — service quality "
            << (max_gap <= 5.0 ? "preserved" : "DEGRADED") << "\n";
  return max_gap <= 5.0 ? 0 : 1;
}
