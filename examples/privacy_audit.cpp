// Privacy audit: demonstrates the paper's central threat and defense.
//
// An honest-but-curious service provider with only black-box access to a
// user's personalized model runs the time-based model-inversion attack
// (Section III-B) to reconstruct the user's historical locations. The
// audit attacks the same deployment with and without Pelican's privacy
// layer and prints the leakage reduction.
//
// Build & run:  ./build/examples/privacy_audit
#include <iostream>

#include "common/table.hpp"
#include "core/pelican.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "models/window_dataset.hpp"

using namespace pelican;

int main() {
  // Small world: campus, contributors, one victim user.
  mobility::CampusConfig campus_config;
  campus_config.buildings = 20;
  campus_config.mean_aps_per_building = 5;
  const auto campus = mobility::Campus::generate(campus_config, 11);
  const auto spec = mobility::EncodingSpec::for_campus(
      campus, mobility::SpatialLevel::kBuilding);

  Rng rng(11);
  const mobility::SimulationConfig sim{.weeks = 6};
  std::vector<mobility::Window> pooled;
  for (std::uint32_t u = 0; u < 6; ++u) {
    Rng persona_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        campus, u, mobility::PersonaConfig{}, persona_rng);
    const auto traj = mobility::simulate(campus, persona, sim,
                                         rng.fork(100 + u));
    const auto windows =
        mobility::make_windows(traj, mobility::SpatialLevel::kBuilding);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }

  core::CloudServer cloud;
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = 32;
  general_config.train.epochs = 6;
  general_config.train.lr = 2e-3;
  (void)cloud.train_general(models::WindowDataset(pooled, spec),
                            general_config);

  Rng victim_rng = rng.fork(77);
  const auto persona = mobility::generate_persona(
      campus, 77, mobility::PersonaConfig{}, victim_rng);
  const auto trajectory = mobility::simulate(campus, persona, sim,
                                             rng.fork(777));
  auto split = mobility::split_windows(
      mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding),
      0.8);

  core::Device device(77, split.train, spec);
  models::PersonalizationConfig personal_config;
  personal_config.method = models::PersonalizationMethod::kFeatureExtraction;
  personal_config.train.epochs = 8;
  personal_config.train.lr = 2e-3;
  device.personalize(cloud, personal_config);
  device.set_privacy_temperature(core::PrivacyLayer::kStrongTemperature);

  // The audit: attack with and without the privacy layer.
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {1, 3, 5};
  config.max_windows = 60;
  const core::PrivacyAudit audit = core::audit_device(
      device, split.test, attack::PriorKind::kTrue, config);

  Table table({"top-k", "leakage without defense %", "with privacy layer %",
               "reduction %"});
  for (std::size_t i = 0; i < config.ks.size(); ++i) {
    table.add_row({std::to_string(config.ks[i]),
                   Table::num(100.0 * audit.baseline.topk_accuracy[i], 1),
                   Table::num(100.0 * audit.defended.topk_accuracy[i], 1),
                   Table::num(audit.reduction_percent[i], 1)});
  }
  std::cout << "model-inversion audit of user 77 ("
            << audit.baseline.windows_attacked << " historical windows, "
            << "adversary A1, time-based, true prior):\n"
            << table;
  std::cout << "attack queries: baseline " << audit.baseline.model_queries
            << ", defended " << audit.defended.model_queries << "\n";
  return 0;
}
