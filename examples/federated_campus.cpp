// Federated campus: the complete Pelican lifecycle (Fig. 4) over a whole
// fleet of devices with periodic model updates.
//
//  * The cloud trains the general model from contributor traces.
//  * Every student device downloads it, personalizes locally, picks its own
//    privacy temperature, and deploys (half on-device, half cloud-hosted).
//  * Two weeks later new traces arrive: devices re-invoke transfer
//    learning (model update) and redeploy.
//
// Build & run:  ./build/examples/federated_campus
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/pelican.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "nn/metrics.hpp"
#include "models/window_dataset.hpp"

using namespace pelican;

int main() {
  mobility::CampusConfig campus_config;
  campus_config.buildings = 20;
  campus_config.mean_aps_per_building = 5;
  const auto campus = mobility::Campus::generate(campus_config, 31);
  const auto spec = mobility::EncodingSpec::for_campus(
      campus, mobility::SpatialLevel::kBuilding);

  Rng rng(31);
  const mobility::SimulationConfig sim{.weeks = 8};

  // Contributors feed the cloud.
  std::vector<mobility::Window> pooled;
  for (std::uint32_t u = 0; u < 6; ++u) {
    Rng persona_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        campus, u, mobility::PersonaConfig{}, persona_rng);
    const auto traj =
        mobility::simulate(campus, persona, sim, rng.fork(100 + u));
    const auto windows =
        mobility::make_windows(traj, mobility::SpatialLevel::kBuilding);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }
  core::CloudServer cloud;
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = 32;
  general_config.train.epochs = 6;
  general_config.train.lr = 2e-3;
  const auto v1 = cloud.train_general(models::WindowDataset(pooled, spec),
                                      general_config);
  std::cout << "cloud: general model v" << v1 << " trained on "
            << pooled.size() << " windows\n";

  // A fleet of student devices joins.
  constexpr std::size_t kFleet = 4;
  models::PersonalizationConfig personal_config;
  personal_config.method = models::PersonalizationMethod::kFeatureExtraction;
  personal_config.train.epochs = 6;
  personal_config.train.lr = 2e-3;

  struct Student {
    std::unique_ptr<core::Device> device;
    std::vector<mobility::Window> fresh_windows;  // arrive after deployment
    std::vector<mobility::Window> test_windows;
  };
  std::vector<Student> fleet;

  Table deploy_table({"user", "site", "privacy T", "initial windows",
                      "personalize s"});
  for (std::uint32_t i = 0; i < kFleet; ++i) {
    const std::uint32_t user_id = 100 + i;
    Rng persona_rng = rng.fork(user_id);
    const auto persona = mobility::generate_persona(
        campus, user_id, mobility::PersonaConfig{}, persona_rng);
    const auto trajectory =
        mobility::simulate(campus, persona, sim, rng.fork(1000 + user_id));
    const auto windows =
        mobility::make_windows(trajectory, mobility::SpatialLevel::kBuilding);

    // Weeks 1-4 are available now; weeks 5-6 arrive later; rest is test.
    std::vector<mobility::Window> initial =
        mobility::windows_in_first_weeks(windows, 4);
    auto split = mobility::split_windows(windows, 0.75);
    Student student;
    student.test_windows = std::move(split.test);
    std::vector<mobility::Window> fresh;
    for (const auto& w : split.train) {
      if (w.start_minute >= 4 * mobility::kMinutesPerWeek) {
        fresh.push_back(w);
      }
    }
    student.fresh_windows = std::move(fresh);
    student.device =
        std::make_unique<core::Device>(user_id, std::move(initial), spec);

    // Each user picks their own privacy preference.
    const double temperature = i % 2 == 0 ? 1e-3 : 1e-2;
    student.device->set_privacy_temperature(temperature);
    const auto cost = student.device->personalize(cloud, personal_config);

    // Half deploy locally, half to the cloud.
    const bool local = i % 2 == 0;
    if (!local) student.device->deploy_to_cloud(cloud);
    deploy_table.add_row({std::to_string(user_id),
                          local ? "device" : "cloud",
                          Table::num(temperature, 4),
                          std::to_string(student.device->private_data()
                                             .size()),
                          Table::num(cost.wall_seconds, 2)});
    fleet.push_back(std::move(student));
  }
  std::cout << deploy_table;

  // Two weeks pass: new data arrives, devices update and redeploy.
  Table update_table({"user", "windows after update", "top-3 before %",
                      "top-3 after %"});
  models::PersonalizationConfig update_config = personal_config;
  update_config.train.epochs = 3;
  for (auto& student : fleet) {
    const models::WindowDataset holdout(student.test_windows, spec);
    auto& before_model = const_cast<nn::SequenceClassifier&>(
        student.device->personalized_model());
    const double before = 100.0 * nn::topk_accuracy(before_model, holdout, 3);
    (void)student.device->update(student.fresh_windows, update_config);
    auto& after_model = const_cast<nn::SequenceClassifier&>(
        student.device->personalized_model());
    const double after = 100.0 * nn::topk_accuracy(after_model, holdout, 3);
    update_table.add_row(
        {std::to_string(student.device->user_id()),
         std::to_string(student.device->private_data().size()),
         Table::num(before, 1), Table::num(after, 1)});
  }
  std::cout << "model update (Fig. 4, step 4) with two new weeks of data:\n"
            << update_table;
  return 0;
}
